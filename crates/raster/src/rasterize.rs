//! Polygon rasterization into APRIL `P`/`C` interval lists.
//!
//! Enumerating every cell a large polygon covers is infeasible on a
//! `2^16 × 2^16` grid. Instead we descend the Hilbert *quadtree*: an
//! aligned `2^k × 2^k` block of cells corresponds to one contiguous
//! Hilbert id range, so a block classified as uniformly-interior is
//! emitted as a single interval of `4^k` cells without ever visiting
//! them. Only blocks that contain boundary edges are subdivided; their
//! leaf cells become partial (`C`-only) cells. Total work is proportional
//! to the boundary's cell footprint, not the polygon's area.
//!
//! Cell semantics (exact, decided with the robust kernel):
//!
//! - **partial** — the closed cell rectangle intersects the polygon
//!   boundary;
//! - **full** — no boundary contact and the cell center is interior, so
//!   the whole closed cell lies in the polygon's interior;
//! - **outside** — no boundary contact, center exterior.
//!
//! `P` = full cells, `C` = full ∪ partial cells. These definitions give
//! the conservative/progressive guarantees the intermediate filters rely
//! on: every `P` cell is wholly interior, every cell meeting the polygon
//! is in `C`.

use crate::grid::Grid;
use crate::hilbert::block_range;
use crate::intervals::IntervalList;
use stj_geom::predicates::{orient2d, Orientation};
use stj_geom::seg_intersect::intersect_segments;
use stj_geom::{Point, Polygon, Rect, Segment};

/// Rasterizes `poly` on `grid`, returning `(P, C)` interval lists.
pub fn rasterize(poly: &Polygon, grid: &Grid) -> (IntervalList, IntervalList) {
    let edges: Vec<Segment> = poly.edges().collect();
    let crossings = RowCrossings::build(&edges, grid);

    let mut out = Emit {
        p_ranges: Vec::new(),
        c_ranges: Vec::new(),
    };
    let all: Vec<u32> = (0..edges.len() as u32).collect();
    let mut ctx = Ctx {
        grid,
        edges: &edges,
        poly_mbr: *poly.mbr(),
        crossings: &crossings,
        out: &mut out,
    };
    descend(&mut ctx, 0, 0, grid.order(), &all);

    (
        IntervalList::from_ranges(out.p_ranges),
        IntervalList::from_ranges(out.c_ranges),
    )
}

struct Emit {
    p_ranges: Vec<(u64, u64)>,
    c_ranges: Vec<(u64, u64)>,
}

struct Ctx<'a> {
    grid: &'a Grid,
    edges: &'a [Segment],
    poly_mbr: Rect,
    crossings: &'a RowCrossings,
    out: &'a mut Emit,
}

/// Recursively classifies the aligned block at `(col0, row0)` with side
/// `2^level`; `active` lists the indices of edges intersecting the block.
fn descend(ctx: &mut Ctx<'_>, col0: u32, row0: u32, level: u32, active: &[u32]) {
    if active.is_empty() {
        // Uniform block: no boundary inside it, so one parity query at the
        // block's center cell classifies every cell.
        let half = (1u32 << level) / 2;
        let (qc, qr) = (col0 + half.saturating_sub(1), row0 + half.saturating_sub(1));
        if !ctx
            .grid
            .block_rect(col0, row0, level)
            .intersects(&ctx.poly_mbr)
        {
            return; // cannot be interior
        }
        if ctx.crossings.is_inside(ctx.grid, qc, qr) {
            let r = block_range(ctx.grid.order(), col0, row0, level);
            ctx.out.p_ranges.push(r);
            ctx.out.c_ranges.push(r);
        }
        return;
    }
    if level == 0 {
        // Leaf cell with boundary contact: partial.
        let r = block_range(ctx.grid.order(), col0, row0, 0);
        ctx.out.c_ranges.push(r);
        return;
    }

    let half = 1u32 << (level - 1);
    let children = [
        (col0, row0),
        (col0 + half, row0),
        (col0, row0 + half),
        (col0 + half, row0 + half),
    ];
    for (cc, cr) in children {
        let rect = ctx.grid.block_rect(cc, cr, level - 1);
        let child_active: Vec<u32> = active
            .iter()
            .copied()
            .filter(|&ei| segment_intersects_rect(&ctx.edges[ei as usize], &rect))
            .collect();
        descend(ctx, cc, cr, level - 1, &child_active);
    }
}

/// Exact closed segment–rectangle intersection test.
fn segment_intersects_rect(seg: &Segment, rect: &Rect) -> bool {
    if !seg.mbr().intersects(rect) {
        return false;
    }
    if rect.contains_point(seg.a) || rect.contains_point(seg.b) {
        return true;
    }
    // Endpoints outside: the segment intersects the rect iff it crosses
    // one of the rect's edges. Prune first: all four corners strictly on
    // one side of the segment's line means no contact.
    let c = [
        rect.min,
        Point::new(rect.max.x, rect.min.y),
        rect.max,
        Point::new(rect.min.x, rect.max.y),
    ];
    let mut pos = false;
    let mut neg = false;
    for corner in c {
        match orient2d(seg.a, seg.b, corner) {
            Orientation::CounterClockwise => pos = true,
            Orientation::Clockwise => neg = true,
            Orientation::Collinear => {
                pos = true;
                neg = true;
            }
        }
    }
    if !(pos && neg) {
        return false;
    }
    let rect_edges = [
        Segment::new(c[0], c[1]),
        Segment::new(c[1], c[2]),
        Segment::new(c[2], c[3]),
        Segment::new(c[3], c[0]),
    ];
    rect_edges
        .iter()
        .any(|re| intersect_segments(*seg, *re).is_some())
}

/// Per-cell-row boundary crossings, in CSR layout, for O(log) interior
/// parity queries at cell centers of edge-free blocks.
struct RowCrossings {
    row_lo: u32,
    /// `offsets[i]..offsets[i+1]` indexes `xs` for row `row_lo + i`.
    offsets: Vec<u32>,
    xs: Vec<f64>,
}

impl RowCrossings {
    fn build(edges: &[Segment], grid: &Grid) -> RowCrossings {
        if edges.is_empty() {
            return RowCrossings {
                row_lo: 0,
                offsets: vec![0],
                xs: Vec::new(),
            };
        }
        let mut ymin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        for e in edges {
            ymin = ymin.min(e.a.y.min(e.b.y));
            ymax = ymax.max(e.a.y.max(e.b.y));
        }
        let row_lo = grid.row_of(ymin);
        let row_hi = grid.row_of(ymax);
        let n_rows = (row_hi - row_lo + 1) as usize;

        // Pass 1: count crossings per row.
        let mut counts = vec![0u32; n_rows];
        let mut per_edge_rows = Vec::with_capacity(edges.len());
        for e in edges {
            let (r0, r1) = edge_row_span(e, grid, row_lo, row_hi);
            per_edge_rows.push((r0, r1));
            for r in r0..=r1 {
                let yc = grid.row_center_y(r);
                if (e.a.y > yc) != (e.b.y > yc) {
                    counts[(r - row_lo) as usize] += 1;
                }
            }
        }

        // Prefix sums -> offsets.
        let mut offsets = vec![0u32; n_rows + 1];
        for i in 0..n_rows {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut xs = vec![0.0f64; offsets[n_rows] as usize];

        // Pass 2: fill.
        let mut cursor = offsets.clone();
        for (e, &(r0, r1)) in edges.iter().zip(&per_edge_rows) {
            for r in r0..=r1 {
                let yc = grid.row_center_y(r);
                if (e.a.y > yc) != (e.b.y > yc) {
                    let t = (yc - e.a.y) / (e.b.y - e.a.y);
                    let x = e.a.x + t * (e.b.x - e.a.x);
                    let slot = &mut cursor[(r - row_lo) as usize];
                    xs[*slot as usize] = x;
                    *slot += 1;
                }
            }
        }

        // Sort each row's crossings.
        for i in 0..n_rows {
            xs[offsets[i] as usize..offsets[i + 1] as usize]
                .sort_by(|a, b| a.partial_cmp(b).expect("finite crossing"));
        }

        RowCrossings {
            row_lo,
            offsets,
            xs,
        }
    }

    /// Even–odd parity of cell `(col, row)`'s center against the boundary
    /// (valid only when no boundary passes through the cell's block).
    fn is_inside(&self, grid: &Grid, col: u32, row: u32) -> bool {
        if row < self.row_lo {
            return false;
        }
        let i = (row - self.row_lo) as usize;
        if i + 1 >= self.offsets.len() {
            return false;
        }
        let slice = &self.xs[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        let qx = grid.cell_center(col, row).x;
        let crossings = slice.partition_point(|&x| x < qx);
        crossings % 2 == 1
    }
}

/// Rows of the grid whose center line the edge's y-extent reaches,
/// clamped to the boundary's row span.
fn edge_row_span(e: &Segment, grid: &Grid, row_lo: u32, row_hi: u32) -> (u32, u32) {
    let ymin = e.a.y.min(e.b.y);
    let ymax = e.a.y.max(e.b.y);
    // Center of row r is extent.min.y + (r + 0.5) * cell_h; the first row
    // whose center >= ymin and the last whose center <= ymax.
    let y0 = grid.extent().min.y;
    let h = grid.cell_height();
    let r0 = ((ymin - y0) / h - 0.5).ceil().max(0.0) as i64;
    let r1 = ((ymax - y0) / h - 0.5).floor().max(-1.0) as i64;
    let r0 = (r0.clamp(0, i64::from(grid.side() - 1)) as u32).clamp(row_lo, row_hi);
    if r1 < r0 as i64 {
        // Edge spans no row center; return an empty-ish span handled by
        // the caller loop bounds (r0..=r1 with r1 < r0 iterates nothing —
        // but u32 reverse ranges would iterate; signal emptiness by a
        // (1, 0)-style span clamped below).
        return (1, 0);
    }
    let r1 = (r1.clamp(0, i64::from(grid.side() - 1)) as u32).clamp(row_lo, row_hi);
    (r0, r1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(order: u32, size: f64) -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, size, size), order)
    }

    /// Brute-force oracle on small grids: exact per-cell classification.
    fn oracle(poly: &Polygon, g: &Grid) -> (Vec<u64>, Vec<u64>) {
        use stj_geom::polygon::Location;
        let mut p_cells = Vec::new();
        let mut c_cells = Vec::new();
        let edges: Vec<Segment> = poly.edges().collect();
        for col in 0..g.side() {
            for row in 0..g.side() {
                let rect = g.cell_rect(col, row);
                let touched = edges.iter().any(|e| segment_intersects_rect(e, &rect));
                let d = crate::hilbert::xy_to_d(g.order(), col, row);
                if touched {
                    c_cells.push(d);
                } else if poly.locate(g.cell_center(col, row)) == Location::Inside {
                    p_cells.push(d);
                    c_cells.push(d);
                }
            }
        }
        p_cells.sort_unstable();
        c_cells.sort_unstable();
        (p_cells, c_cells)
    }

    fn check_against_oracle(poly: &Polygon, g: &Grid) {
        let (p, c) = rasterize(poly, g);
        let (po, co) = oracle(poly, g);
        assert_eq!(
            p.iter_cells().collect::<Vec<_>>(),
            po,
            "P mismatch for {:?}",
            poly.mbr()
        );
        assert_eq!(
            c.iter_cells().collect::<Vec<_>>(),
            co,
            "C mismatch for {:?}",
            poly.mbr()
        );
        // Structural invariants.
        assert!(p.inside(&c), "P must be a subset of C");
    }

    #[test]
    fn axis_aligned_square() {
        // Grid 8x8 over [0,8]^2, polygon [2,6]^2: boundary lies exactly on
        // cell borders.
        let g = grid(3, 8.0);
        let poly = Polygon::rect(Rect::from_coords(2.0, 2.0, 6.0, 6.0));
        check_against_oracle(&poly, &g);
        let (p, c) = rasterize(&poly, &g);
        // Full cells: strictly interior cells only (the 2x2 core at
        // [3,5]^2... boundary on borders of cells (2..6)x(2..6) rings).
        assert_eq!(p.num_cells(), 4);
        assert!(c.num_cells() >= 16);
    }

    #[test]
    fn off_grid_square() {
        let g = grid(3, 8.0);
        let poly = Polygon::rect(Rect::from_coords(1.5, 1.5, 6.5, 6.5));
        check_against_oracle(&poly, &g);
        let (p, c) = rasterize(&poly, &g);
        // Interior 2..6 cells are full (no boundary), ring at 1 and 6 partial.
        assert_eq!(p.num_cells(), 16);
        assert_eq!(c.num_cells(), 36);
    }

    #[test]
    fn triangle_matches_oracle() {
        let g = grid(4, 16.0);
        let poly =
            Polygon::from_coords(vec![(1.0, 1.0), (14.5, 2.5), (7.3, 13.9)], vec![]).unwrap();
        check_against_oracle(&poly, &g);
    }

    #[test]
    fn polygon_with_hole_matches_oracle() {
        let g = grid(4, 16.0);
        let poly = Polygon::from_coords(
            vec![(1.0, 1.0), (15.0, 1.0), (15.0, 15.0), (1.0, 15.0)],
            vec![vec![(5.0, 5.0), (11.0, 5.0), (11.0, 11.0), (5.0, 11.0)]],
        )
        .unwrap();
        check_against_oracle(&poly, &g);
        let (p, c) = rasterize(&poly, &g);
        // Hole interior cells are neither P nor C.
        let d_hole = crate::hilbert::xy_to_d(4, 8, 8);
        assert!(!c.contains_cell(d_hole));
        assert!(!p.contains_cell(d_hole));
    }

    #[test]
    fn tiny_polygon_single_cell() {
        let g = grid(4, 16.0);
        let poly = Polygon::from_coords(vec![(3.2, 3.2), (3.6, 3.2), (3.4, 3.7)], vec![]).unwrap();
        check_against_oracle(&poly, &g);
        let (p, c) = rasterize(&poly, &g);
        assert_eq!(p.num_cells(), 0, "sub-cell polygons have empty P");
        assert_eq!(c.num_cells(), 1);
    }

    #[test]
    fn concave_polygon_matches_oracle() {
        let g = grid(4, 16.0);
        let poly = Polygon::from_coords(
            vec![
                (1.0, 1.0),
                (15.0, 1.0),
                (15.0, 5.0),
                (5.0, 5.0),
                (5.0, 9.0),
                (15.0, 9.0),
                (15.0, 15.0),
                (1.0, 15.0),
            ],
            vec![],
        )
        .unwrap();
        check_against_oracle(&poly, &g);
    }

    #[test]
    fn random_star_polygons_match_oracle() {
        let mut seed = 0xABCDu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..10 {
            let n = 6 + (rnd() * 20.0) as usize;
            let cx = 6.0 + rnd() * 4.0;
            let cy = 6.0 + rnd() * 4.0;
            let mut pts = Vec::with_capacity(n);
            for i in 0..n {
                let ang = (i as f64 / n as f64) * std::f64::consts::TAU;
                let r = 1.0 + rnd() * 5.0;
                pts.push((cx + r * ang.cos(), cy + r * ang.sin()));
            }
            let poly = Polygon::from_coords(pts, vec![]).unwrap();
            let g = grid(4, 16.0);
            check_against_oracle(&poly, &g);
            let _ = trial;
        }
    }

    #[test]
    fn full_grid_polygon() {
        // Polygon covering the whole grid: C covers everything, P is the
        // interior block.
        let g = grid(3, 8.0);
        let poly = Polygon::rect(Rect::from_coords(0.0, 0.0, 8.0, 8.0));
        check_against_oracle(&poly, &g);
        let (_, c) = rasterize(&poly, &g);
        assert_eq!(c.num_cells(), 64);
    }

    #[test]
    fn segment_rect_intersection_cases() {
        let r = Rect::from_coords(2.0, 2.0, 4.0, 4.0);
        let seg = |ax: f64, ay: f64, bx: f64, by: f64| {
            Segment::new(Point::new(ax, ay), Point::new(bx, by))
        };
        // Crossing through.
        assert!(segment_intersects_rect(&seg(0.0, 3.0, 6.0, 3.0), &r));
        // Endpoint inside.
        assert!(segment_intersects_rect(&seg(3.0, 3.0, 9.0, 9.0), &r));
        // Touching a corner.
        assert!(segment_intersects_rect(&seg(0.0, 4.0, 2.0, 2.0), &r)); // passes through? line x+y=4 touches corner (2,2)? 2+2=4 yes
                                                                        // Missing entirely.
        assert!(!segment_intersects_rect(&seg(0.0, 0.0, 1.0, 1.0), &r));
        // Bbox overlaps but segment passes outside the corner.
        assert!(!segment_intersects_rect(&seg(0.0, 3.9, 2.1, 6.0), &r));
        // Collinear with an edge.
        assert!(segment_intersects_rect(&seg(1.0, 2.0, 5.0, 2.0), &r));
    }

    #[test]
    fn larger_grid_consistency() {
        // Same polygon at higher order: P grows toward the true area,
        // C shrinks toward it; both stay sound w.r.t. each other.
        let poly = Polygon::from_coords(
            vec![(1.0, 1.0), (14.0, 3.0), (12.0, 14.0), (3.0, 12.0)],
            vec![],
        )
        .unwrap();
        let mut last_p = 0.0;
        let mut last_c = f64::INFINITY;
        for order in [3u32, 4, 5, 6] {
            let g = grid(order, 16.0);
            let (p, c) = rasterize(&poly, &g);
            let cell_area = g.cell_width() * g.cell_height();
            let p_area = p.num_cells() as f64 * cell_area;
            let c_area = c.num_cells() as f64 * cell_area;
            let area = poly.area();
            assert!(p_area <= area + 1e-9, "order {order}: P exceeds area");
            assert!(c_area >= area - 1e-9, "order {order}: C undershoots area");
            assert!(p_area >= last_p - 1e-9);
            assert!(c_area <= last_c + 1e-9);
            last_p = p_area;
            last_c = c_area;
        }
    }
}
