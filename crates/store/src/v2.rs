//! STJD v2: a columnar, section-aligned dataset format that loads
//! straight into a [`DatasetArena`].
//!
//! Layout (all integers and floats little-endian; every section starts
//! on an 8-byte boundary and the file length is always a multiple of 8):
//!
//! ```text
//! magic    b"STJD"
//! version  u32 (2)
//! grid     extent: 4 × f64, order: u32
//! name     u32 length + UTF-8 bytes, zero-padded to an 8-byte boundary
//! counts   5 × u64: objects, rings, vertices, P intervals, C intervals
//! sections (contiguous, in this order):
//!   mbrs            n_objects  × 32  per-object MBR (minx miny maxx maxy)
//!   interior        n_objects  × 16  representative interior point
//!                                    (NaN pair = none)
//!   p_offs          (n_objects + 1) × 8   P span prefix offsets
//!   c_offs          (n_objects + 1) × 8   C span prefix offsets
//!   p_pool          n_p        × 16  P intervals (start, end)
//!   c_pool          n_c        × 16  C intervals (start, end)
//!   obj_ring_offs   (n_objects + 1) × 8   object → ring offsets
//!   ring_vert_offs  (n_rings + 1)   × 8   ring → vertex offsets
//!   verts           n_vertices × 16  ring vertices (x, y)
//! ```
//!
//! Unlike v1 (one length-prefixed record per object), every column is one
//! contiguous run, so loading is a handful of bulk reads — and on
//! little-endian targets ([`stj_core::zero_copy_supported`]) the whole
//! file can be read into a single word-aligned buffer and the arena's
//! columns borrowed from it directly, with no per-object work at all.
//!
//! Structural validation (offset monotonicity, ring/vertex minimums,
//! finiteness, interval normalization) is delegated to
//! [`DatasetArena::from_columns`]/[`DatasetArena::from_backing`]; this
//! module enforces the framing: header sanity, checked section sizes,
//! exact file length.

use crate::binary::{read_dataset_v1_body, StoreError, MAGIC};
use crate::mmap::Mapping;
use std::io::{BufReader, Read, Write};
use stj_core::{zero_copy_supported, ArenaBacking, ArenaColumns, ColumnSpans, DatasetArena};
use stj_geom::{Point, Rect};
use stj_raster::Grid;

const VERSION2: u32 = 2;

/// Hard ceiling on any v2 count field (2^40 elements ≈ 16 TiB of the
/// widest section): purely an overflow guard, far above any real
/// dataset. Actual allocation is still bounded by the bytes present.
const MAX_COUNT: u64 = 1 << 40;

fn fmt_err(msg: impl Into<String>) -> StoreError {
    StoreError::Format(msg.into())
}

/// Writes an arena and its grid in v2 format.
pub fn write_arena_v2<W: Write>(
    w: &mut W,
    arena: &DatasetArena,
    grid: &Grid,
) -> Result<(), StoreError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION2.to_le_bytes())?;
    for v in [
        grid.extent().min.x,
        grid.extent().min.y,
        grid.extent().max.x,
        grid.extent().max.y,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&grid.order().to_le_bytes())?;
    let name = arena.name().as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&[0u8; 8][..pad8(name.len())])?;
    for count in [
        arena.len() as u64,
        (arena.ring_vert_offs().len() - 1) as u64,
        arena.verts().len() as u64,
        arena.p_pool().len() as u64,
        arena.c_pool().len() as u64,
    ] {
        w.write_all(&count.to_le_bytes())?;
    }
    write_rects(w, arena.mbrs())?;
    write_points(w, arena.interior_points())?;
    write_u64s(w, arena.p_offs())?;
    write_u64s(w, arena.c_offs())?;
    write_pairs(w, arena.p_pool())?;
    write_pairs(w, arena.c_pool())?;
    write_u64s(w, arena.obj_ring_offs())?;
    write_u64s(w, arena.ring_vert_offs())?;
    write_points(w, arena.verts())?;
    Ok(())
}

/// Reads any STJD stream into an arena: v2 via bulk column decode, v1 via
/// the per-object parser followed by columnar conversion.
pub fn read_arena<R: Read>(r: &mut R) -> Result<(DatasetArena, Grid), StoreError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(fmt_err("bad magic (not an STJD file)"));
    }
    match read_u32(r)? {
        1 => {
            let (ds, grid) = read_dataset_v1_body(r)?;
            Ok((ds.to_arena(), grid))
        }
        2 => read_v2_body(r),
        v => Err(fmt_err(format!("unsupported version {v}"))),
    }
}

/// Opens an in-memory STJD image. For v2 on a zero-copy-capable target
/// the bytes are copied once into a word-aligned backing buffer and the
/// arena's columns borrow from it (no per-object or per-column
/// allocation); otherwise falls back to [`read_arena`].
pub fn open_arena_from_bytes(bytes: &[u8]) -> Result<(DatasetArena, Grid), StoreError> {
    if bytes.len() >= 8
        && &bytes[..4] == MAGIC
        && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) == VERSION2
        && bytes.len().is_multiple_of(8)
        && zero_copy_supported()
    {
        return open_v2_zero_copy(bytes);
    }
    read_arena(&mut { bytes })
}

/// Opens a dataset file. For v2 on a zero-copy-capable target the file
/// is memory-mapped and the arena's columns borrow the page cache
/// directly — an O(1) open that copies nothing and shares physical
/// pages with every other process mapping the same file. Otherwise
/// (v1, foreign layout, mapping failure) falls back to the buffered
/// [`open_arena_from_bytes`] path.
pub fn open_arena(path: &std::path::Path) -> Result<(DatasetArena, Grid), StoreError> {
    let mut file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len >= 8 && file_len % 8 == 0 && zero_copy_supported() && Mapping::supported() {
        let mut head = [0u8; 8];
        file.read_exact(&mut head)?;
        if &head[..4] == MAGIC && u32::from_le_bytes(head[4..8].try_into().unwrap()) == VERSION2 {
            if let Ok(m) = Mapping::map(&file) {
                drop(file); // the mapping keeps the pages alive
                return open_v2_mapped(m);
            }
        }
    }
    drop(file);
    let bytes = std::fs::read(path)?;
    open_arena_from_bytes(&bytes)
}

/// Summary of a stored dataset, as reported by `stj info`.
#[derive(Clone, Debug)]
pub struct DatasetInfo {
    /// Format version (1 or 2).
    pub version: u32,
    /// Dataset name.
    pub name: String,
    /// Grid order.
    pub order: u32,
    /// Grid extent.
    pub extent: Rect,
    /// Object count.
    pub n_objects: u64,
    /// Total ring count.
    pub n_rings: u64,
    /// Total vertex count.
    pub n_vertices: u64,
    /// Total `P` interval count.
    pub n_p: u64,
    /// Total `C` interval count.
    pub n_c: u64,
    /// Whole-file size in bytes.
    pub file_bytes: u64,
    /// Per-section byte sizes (v2 only; empty for v1, whose sizes are
    /// interleaved per object).
    pub sections: Vec<(&'static str, u64)>,
}

/// Reads the summary of a stored dataset. For v2 only the bounded
/// header (grid + name + counts) is read — constant work regardless of
/// file size, so `stj info` on a 10 GB dataset is instant. v1 still
/// requires a full parse (its counts are interleaved per object) but
/// streams through a `BufReader` instead of buffering the whole file.
pub fn dataset_info(path: &std::path::Path) -> Result<DatasetInfo, StoreError> {
    let file = std::fs::File::open(path)?;
    let file_bytes = file.metadata()?.len();
    let r = &mut BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(fmt_err("bad magic (not an STJD file)"));
    }
    match read_u32(r)? {
        1 => {
            let (ds, grid) = read_dataset_v1_body(r)?;
            let arena = ds.to_arena();
            Ok(DatasetInfo {
                version: 1,
                name: ds.name.clone(),
                order: grid.order(),
                extent: *grid.extent(),
                n_objects: ds.len() as u64,
                n_rings: (arena.ring_vert_offs().len() - 1) as u64,
                n_vertices: arena.verts().len() as u64,
                n_p: arena.p_pool().len() as u64,
                n_c: arena.c_pool().len() as u64,
                file_bytes,
                sections: Vec::new(),
            })
        }
        2 => {
            let header = read_v2_header(r)?;
            let sizes = section_sizes(&header.counts)?;
            Ok(DatasetInfo {
                version: 2,
                name: header.name,
                order: header.grid.order(),
                extent: *header.grid.extent(),
                n_objects: header.counts.n_objects,
                n_rings: header.counts.n_rings,
                n_vertices: header.counts.n_vertices,
                n_p: header.counts.n_p,
                n_c: header.counts.n_c,
                file_bytes,
                sections: SECTION_NAMES.iter().copied().zip(sizes).collect(),
            })
        }
        v => Err(fmt_err(format!("unsupported version {v}"))),
    }
}

const SECTION_NAMES: [&str; 9] = [
    "mbrs",
    "interior",
    "p_offs",
    "c_offs",
    "p_pool",
    "c_pool",
    "obj_ring_offs",
    "ring_vert_offs",
    "verts",
];

#[derive(Clone, Copy, Debug)]
struct V2Counts {
    n_objects: u64,
    n_rings: u64,
    n_vertices: u64,
    n_p: u64,
    n_c: u64,
}

struct V2Header {
    grid: Grid,
    name: String,
    counts: V2Counts,
}

/// Zero padding after a `len`-byte field to reach an 8-byte boundary.
fn pad8(len: usize) -> usize {
    (8 - len % 8) % 8
}

/// Parses everything between the version field and the first section.
fn read_v2_header<R: Read>(r: &mut R) -> Result<V2Header, StoreError> {
    let (minx, miny, maxx, maxy) = (read_f64(r)?, read_f64(r)?, read_f64(r)?, read_f64(r)?);
    if !(minx < maxx && miny < maxy) {
        return Err(fmt_err("degenerate grid extent"));
    }
    let order = read_u32(r)?;
    if !(1..=16).contains(&order) {
        return Err(fmt_err(format!("grid order {order} out of range")));
    }
    let grid = Grid::new(Rect::from_coords(minx, miny, maxx, maxy), order);

    let name_len = read_u32(r)? as usize;
    if name_len > 1 << 20 {
        return Err(fmt_err("unreasonable name length"));
    }
    let mut name_bytes = vec![0u8; name_len + pad8(name_len)];
    r.read_exact(&mut name_bytes)?;
    name_bytes.truncate(name_len);
    let name = String::from_utf8(name_bytes).map_err(|_| fmt_err("dataset name is not UTF-8"))?;

    let mut counts = [0u64; 5];
    for c in &mut counts {
        *c = read_u64(r)?;
        if *c > MAX_COUNT {
            return Err(fmt_err(format!("count {c} exceeds format maximum")));
        }
    }
    Ok(V2Header {
        grid,
        name,
        counts: V2Counts {
            n_objects: counts[0],
            n_rings: counts[1],
            n_vertices: counts[2],
            n_p: counts[3],
            n_c: counts[4],
        },
    })
}

/// Per-section byte sizes in [`SECTION_NAMES`] order, checked against
/// overflow.
fn section_sizes(c: &V2Counts) -> Result<[u64; 9], StoreError> {
    let n = c.n_objects;
    let offs = n
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(|| fmt_err("offset table size overflows"))?;
    let ring_offs = c
        .n_rings
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(|| fmt_err("ring offset table size overflows"))?;
    let mul = |count: u64, w: u64, what: &str| {
        count
            .checked_mul(w)
            .ok_or_else(|| fmt_err(format!("{what} section size overflows")))
    };
    Ok([
        mul(n, 32, "mbrs")?,
        mul(n, 16, "interior")?,
        offs,
        offs,
        mul(c.n_p, 16, "p_pool")?,
        mul(c.n_c, 16, "c_pool")?,
        offs,
        ring_offs,
        mul(c.n_vertices, 16, "verts")?,
    ])
}

/// Bulk-decoding v2 reader: one `Vec` per column, ~10 allocations total
/// regardless of object count.
fn read_v2_body<R: Read>(r: &mut R) -> Result<(DatasetArena, Grid), StoreError> {
    let header = read_v2_header(r)?;
    let sizes = section_sizes(&header.counts)?;
    let mut sections: Vec<Vec<u8>> = Vec::with_capacity(9);
    for (size, name) in sizes.iter().zip(SECTION_NAMES) {
        // `take` + `read_to_end` grows with the bytes actually present,
        // so a hostile count costs at most the real file size — the v2
        // analogue of v1's bounded preallocation.
        let mut buf = Vec::new();
        r.take(*size).read_to_end(&mut buf)?;
        if buf.len() as u64 != *size {
            return Err(fmt_err(format!(
                "truncated {name} section ({} of {size} bytes)",
                buf.len()
            )));
        }
        sections.push(buf);
    }
    let cols = ArenaColumns {
        name: header.name,
        mbrs: decode_rects(&sections[0]),
        interior: decode_points(&sections[1]),
        p_offs: decode_u64s(&sections[2]),
        c_offs: decode_u64s(&sections[3]),
        p_pool: decode_pairs(&sections[4]),
        c_pool: decode_pairs(&sections[5]),
        obj_ring_offs: decode_u64s(&sections[6]),
        ring_vert_offs: decode_u64s(&sections[7]),
        verts: decode_points(&sections[8]),
    };
    let arena = DatasetArena::from_columns(cols).map_err(|e| fmt_err(e.to_string()))?;
    Ok((arena, header.grid))
}

/// Parses the v2 header of a whole-file image and computes the word
/// offsets of every column, verifying the exact file length — shared by
/// the copying and mapped zero-copy opens.
fn v2_image_spans(bytes: &[u8]) -> Result<(String, Grid, ColumnSpans), StoreError> {
    let r = &mut &bytes[8..]; // past magic + version
    let header = read_v2_header(r)?;
    let header_bytes = bytes.len() - r.len();
    debug_assert_eq!(header_bytes % 8, 0, "v2 header is 8-aligned by format");
    let sizes = section_sizes(&header.counts)?;
    let total = sizes
        .iter()
        .try_fold(header_bytes as u64, |acc, s| acc.checked_add(*s))
        .ok_or_else(|| fmt_err("file size overflows"))?;
    if total != bytes.len() as u64 {
        return Err(fmt_err(format!(
            "file is {} bytes, sections demand {total}",
            bytes.len()
        )));
    }

    let mut word_off = header_bytes / 8;
    let mut offs = [0usize; 9];
    for (slot, size) in offs.iter_mut().zip(sizes) {
        *slot = word_off;
        word_off += (size / 8) as usize;
    }
    let spans = ColumnSpans {
        mbrs: offs[0],
        interior: offs[1],
        p_offs: offs[2],
        c_offs: offs[3],
        p_pool: offs[4],
        c_pool: offs[5],
        obj_ring_offs: offs[6],
        ring_vert_offs: offs[7],
        verts: offs[8],
        n_objects: header.counts.n_objects as usize,
        n_rings: header.counts.n_rings as usize,
        n_vertices: header.counts.n_vertices as usize,
        n_p: header.counts.n_p as usize,
        n_c: header.counts.n_c as usize,
    };
    Ok((header.name, header.grid, spans))
}

/// The copying zero-copy open: word-aligned copy of the whole image,
/// columns borrowed at their section offsets.
fn open_v2_zero_copy(bytes: &[u8]) -> Result<(DatasetArena, Grid), StoreError> {
    let (name, grid, spans) = v2_image_spans(bytes)?;
    let mut backing = vec![0u64; bytes.len() / 8].into_boxed_slice();
    // SAFETY: a [u64] is always valid as a byte view of the same size;
    // on the little-endian targets this path is gated to, the byte copy
    // is the in-memory representation.
    unsafe {
        std::slice::from_raw_parts_mut(backing.as_mut_ptr().cast::<u8>(), bytes.len())
            .copy_from_slice(bytes);
    }
    let arena =
        DatasetArena::from_backing(name, backing, spans).map_err(|e| fmt_err(e.to_string()))?;
    Ok((arena, grid))
}

/// The mapped open: columns borrow the page cache directly; the mapping
/// is owned by the arena and unmapped when it drops. Validation runs on
/// the mapped bytes, so a hostile file is rejected exactly like on the
/// copying path.
fn open_v2_mapped(m: Mapping) -> Result<(DatasetArena, Grid), StoreError> {
    let (name, grid, spans) = v2_image_spans(m.bytes())?;
    let arena = DatasetArena::from_backing(name, ArenaBacking::Mapped(Box::new(m)), spans)
        .map_err(|e| fmt_err(e.to_string()))?;
    Ok((arena, grid))
}

fn write_rects<W: Write>(w: &mut W, rects: &[Rect]) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(rects.len() * 32);
    for r in rects {
        for v in [r.min.x, r.min.y, r.max.x, r.max.y] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(w.write_all(&buf)?)
}

fn write_points<W: Write>(w: &mut W, pts: &[Point]) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(pts.len() * 16);
    for p in pts {
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
    }
    Ok(w.write_all(&buf)?)
}

fn write_u64s<W: Write>(w: &mut W, vals: &[u64]) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Ok(w.write_all(&buf)?)
}

fn write_pairs<W: Write>(w: &mut W, pairs: &[(u64, u64)]) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(pairs.len() * 16);
    for (s, e) in pairs {
        buf.extend_from_slice(&s.to_le_bytes());
        buf.extend_from_slice(&e.to_le_bytes());
    }
    Ok(w.write_all(&buf)?)
}

fn decode_u64s(b: &[u8]) -> Vec<u64> {
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn decode_pairs(b: &[u8]) -> Vec<(u64, u64)> {
    b.chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..].try_into().unwrap()),
            )
        })
        .collect()
}

fn decode_points(b: &[u8]) -> Vec<Point> {
    b.chunks_exact(16)
        .map(|c| {
            Point::new(
                f64::from_le_bytes(c[..8].try_into().unwrap()),
                f64::from_le_bytes(c[8..].try_into().unwrap()),
            )
        })
        .collect()
}

fn decode_rects(b: &[u8]) -> Vec<Rect> {
    b.chunks_exact(32)
        .map(|c| Rect {
            min: Point::new(
                f64::from_le_bytes(c[..8].try_into().unwrap()),
                f64::from_le_bytes(c[8..16].try_into().unwrap()),
            ),
            max: Point::new(
                f64::from_le_bytes(c[16..24].try_into().unwrap()),
                f64::from_le_bytes(c[24..].try_into().unwrap()),
            ),
        })
        .collect()
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let v = f64::from_le_bytes(b);
    if !v.is_finite() {
        return Err(fmt_err("non-finite header coordinate"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::write_dataset;
    use stj_core::Dataset;
    use stj_datagen::{generate, DatasetId};
    use stj_geom::Polygon;

    fn sample_arena() -> (DatasetArena, Grid) {
        let polys = generate(DatasetId::OLE, 0.005);
        let mut extent = Rect::empty();
        for p in &polys {
            extent.grow_rect(p.mbr());
        }
        let grid = Grid::new(extent, 10);
        (Dataset::build("OLE", polys, &grid).to_arena(), grid)
    }

    fn tiny_arena() -> (DatasetArena, Grid) {
        let polys = vec![
            Polygon::rect(Rect::from_coords(5.0, 5.0, 40.0, 40.0)),
            Polygon::from_coords(
                vec![(50.0, 10.0), (90.0, 10.0), (90.0, 45.0), (50.0, 45.0)],
                vec![vec![(60.0, 20.0), (80.0, 20.0), (80.0, 35.0), (60.0, 35.0)]],
            )
            .unwrap(),
            Polygon::from_coords(vec![(10.0, 60.0), (45.0, 60.0), (20.0, 90.0)], vec![]).unwrap(),
        ];
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 6);
        (Dataset::build("tiny", polys, &grid).to_arena(), grid)
    }

    fn encode(arena: &DatasetArena, grid: &Grid) -> Vec<u8> {
        let mut buf = Vec::new();
        write_arena_v2(&mut buf, arena, grid).unwrap();
        buf
    }

    #[test]
    fn v2_roundtrip_is_bit_identical() {
        let (arena, grid) = sample_arena();
        let buf = encode(&arena, &grid);
        assert_eq!(buf.len() % 8, 0, "v2 files are word-aligned");

        let (bulk, grid2) = read_arena(&mut buf.as_slice()).unwrap();
        assert_eq!(grid2, grid);
        assert!(!bulk.is_zero_copy());
        assert_eq!(bulk, arena);

        let (zc, grid3) = open_arena_from_bytes(&buf).unwrap();
        assert_eq!(grid3, grid);
        assert_eq!(zc.is_zero_copy(), zero_copy_supported());
        assert_eq!(zc, arena);
    }

    #[test]
    fn v2_rewrite_of_loaded_arena_is_byte_identical() {
        let (arena, grid) = sample_arena();
        let buf = encode(&arena, &grid);
        let (loaded, grid2) = open_arena_from_bytes(&buf).unwrap();
        assert_eq!(encode(&loaded, &grid2), buf);
    }

    #[test]
    fn v1_files_migrate_to_arenas() {
        let (arena, grid) = sample_arena();
        // Re-derive the owned dataset for the v1 writer.
        let polys = generate(DatasetId::OLE, 0.005);
        let ds = Dataset::build("OLE", polys, &grid);
        let mut v1 = Vec::new();
        write_dataset(&mut v1, &ds, &grid).unwrap();

        let (migrated, grid2) = read_arena(&mut v1.as_slice()).unwrap();
        assert_eq!(grid2, grid);
        assert_eq!(migrated, arena, "v1 → arena equals direct conversion");

        // And via the byte-open path (which must detect v1 and fall back).
        let (migrated2, _) = open_arena_from_bytes(&v1).unwrap();
        assert!(!migrated2.is_zero_copy());
        assert_eq!(migrated2, arena);
    }

    #[test]
    fn v2_rejects_truncation_at_every_byte() {
        let (arena, grid) = tiny_arena();
        let buf = encode(&arena, &grid);
        for cut in 0..buf.len() {
            assert!(
                read_arena(&mut &buf[..cut]).is_err(),
                "stream cut at {cut}/{} succeeded",
                buf.len()
            );
            assert!(
                open_arena_from_bytes(&buf[..cut]).is_err(),
                "open cut at {cut}/{} succeeded",
                buf.len()
            );
        }
        assert!(read_arena(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn v2_survives_byte_flips_without_panicking() {
        let (arena, grid) = tiny_arena();
        let buf = encode(&arena, &grid);
        for pos in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0xFF;
            // Either a clean error or a structurally valid parse — never
            // a panic, on both load paths.
            let _ = read_arena(&mut corrupt.as_slice());
            let _ = open_arena_from_bytes(&corrupt);
        }
    }

    #[test]
    fn v2_hostile_counts_fail_without_allocating() {
        let (arena, grid) = tiny_arena();
        let buf = encode(&arena, &grid);
        // Counts live right after the padded name field.
        let name_pad = pad8(arena.name().len());
        let counts_off = 4 + 4 + 32 + 4 + 4 + arena.name().len() + name_pad;
        for slot in 0..5 {
            let mut hostile = buf.clone();
            let off = counts_off + slot * 8;
            hostile[off..off + 8].copy_from_slice(&(MAX_COUNT - 1).to_le_bytes());
            assert!(read_arena(&mut hostile.as_slice()).is_err());
            assert!(open_arena_from_bytes(&hostile).is_err());
            // Beyond the ceiling: rejected at the header.
            hostile[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(read_arena(&mut hostile.as_slice()).is_err());
            assert!(open_arena_from_bytes(&hostile).is_err());
        }
    }

    #[test]
    fn open_arena_maps_v2_files() {
        let (arena, grid) = sample_arena();
        let dir = std::env::temp_dir().join(format!("stj-v2-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ole.stjd");
        std::fs::write(&path, encode(&arena, &grid)).unwrap();

        let (mapped, grid2) = open_arena(&path).unwrap();
        assert_eq!(grid2, grid);
        assert_eq!(mapped, arena);
        if Mapping::supported() && zero_copy_supported() {
            assert_eq!(mapped.backing_kind(), "mapped");
        }
        // The mapped arena joins identically to the built one.
        use stj_core::TopologyJoin;
        let a = TopologyJoin::new().run(&arena, &arena);
        let b = TopologyJoin::new().run(&mapped, &mapped);
        assert_eq!(a.links, b.links);
        assert_eq!(a.stats, b.stats);
        drop(mapped); // unmaps; the file must still be removable

        // Corrupt files are rejected through the mapped path too.
        let buf = encode(&arena, &grid);
        let bad = dir.join("bad.stjd");
        std::fs::write(&bad, &buf[..buf.len() - 8]).unwrap();
        assert!(open_arena(&bad).is_err());

        // v1 files fall back to the migrating open.
        let polys = generate(DatasetId::OLE, 0.005);
        let ds = Dataset::build("OLE", polys, &grid);
        let mut v1 = Vec::new();
        write_dataset(&mut v1, &ds, &grid).unwrap();
        let v1_path = dir.join("ole-v1.stjd");
        std::fs::write(&v1_path, &v1).unwrap();
        let (migrated, _) = open_arena(&v1_path).unwrap();
        assert_eq!(migrated.backing_kind(), "columns");
        assert_eq!(migrated, arena);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_v2_joins_identically_to_built_arena() {
        use stj_core::TopologyJoin;
        let (arena, grid) = sample_arena();
        let buf = encode(&arena, &grid);
        let (zc, _) = open_arena_from_bytes(&buf).unwrap();
        let a = TopologyJoin::new().run(&arena, &arena);
        let b = TopologyJoin::new().run(&zc, &zc);
        assert_eq!(a.links, b.links);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn empty_arena_roundtrips() {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 4);
        let arena = Dataset::build("empty", vec![], &grid).to_arena();
        let buf = encode(&arena, &grid);
        let (loaded, _) = open_arena_from_bytes(&buf).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.name(), "empty");
        assert_eq!(loaded, arena);
    }

    #[test]
    fn info_reports_v2_sections() {
        let (arena, grid) = tiny_arena();
        let dir = std::env::temp_dir().join("stj_v2_info_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.stjd");
        std::fs::write(&path, encode(&arena, &grid)).unwrap();
        let info = dataset_info(&path).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.name, "tiny");
        assert_eq!(info.order, 6);
        assert_eq!(info.n_objects, 3);
        assert_eq!(info.n_rings, 4);
        assert_eq!(info.n_vertices as usize, arena.total_vertices());
        assert_eq!(info.sections.len(), 9);
        let section_total: u64 = info.sections.iter().map(|(_, s)| s).sum();
        assert!(section_total < info.file_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_reads_v1_files() {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 6);
        let ds = Dataset::build(
            "tiny",
            vec![Polygon::rect(Rect::from_coords(5.0, 5.0, 40.0, 40.0))],
            &grid,
        );
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        let dir = std::env::temp_dir().join("stj_v1_info_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny_v1.stjd");
        std::fs::write(&path, &buf).unwrap();
        let info = dataset_info(&path).unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.n_objects, 1);
        assert!(info.sections.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
