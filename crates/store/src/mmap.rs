//! Minimal read-only file memory mapping.
//!
//! The out-of-core open path wants `DatasetArena` columns to borrow
//! straight from the page cache, but the workspace deliberately carries
//! no FFI crates — so this module declares the two `mmap(2)` symbols it
//! needs directly (every Rust binary on the supported targets already
//! links the platform C library). The surface is intentionally tiny:
//! map a whole file read-only and privately, expose it as bytes/words,
//! unmap on drop.
//!
//! Gated to 64-bit Unix (`off_t` is assumed 64-bit); elsewhere
//! [`Mapping::supported`] is `false`, [`Mapping::map`] reports
//! `Unsupported`, and callers fall back to a buffered read.
//!
//! Caveat shared with every mmap consumer: if the file is truncated
//! while mapped, touching the vanished pages raises `SIGBUS`. The store
//! treats dataset files as immutable once written (the CLI always writes
//! to a fresh path), so this is accepted rather than guarded.

use std::fs::File;
use std::io;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Shared by Linux and the BSDs for the subset used here.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub(super) fn map(file: &File, len: usize) -> io::Result<*const u8> {
        // SAFETY: a fresh read-only private mapping of an open fd; the
        // kernel validates every argument and returns MAP_FAILED on any
        // problem.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr)
    }

    pub(super) fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` are exactly what `map` returned, unmapped
        // at most once (owned by a `Mapping`).
        unsafe {
            munmap(ptr as *mut u8, len);
        }
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
mod sys {
    use std::fs::File;
    use std::io;

    pub(super) fn map(_file: &File, _len: usize) -> io::Result<*const u8> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is not available on this target",
        ))
    }

    pub(super) fn unmap(_ptr: *const u8, _len: usize) {}
}

/// A read-only, page-aligned private mapping of an entire file. The
/// mapping outlives the `File` it was created from (the kernel keeps the
/// pages alive until unmap), so callers may drop the handle immediately.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ + MAP_PRIVATE) for its
// whole lifetime, so shared access from any thread is sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Whether this target has a mapping path at all.
    pub fn supported() -> bool {
        cfg!(all(unix, target_pointer_width = "64"))
    }

    /// Maps the whole of `file` read-only.
    ///
    /// Fails with `Unsupported` on targets without the mmap path and
    /// `InvalidInput` for empty files (zero-length mappings are an
    /// `EINVAL` on Linux); callers fall back to a buffered read.
    pub fn map(file: &File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        let ptr = sys::map(file, len)?;
        Ok(Mapping { ptr, len })
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live mapping).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped file image.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `Drop`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The mapped image as `u64` words.
    ///
    /// # Panics
    /// Panics if the length is not a multiple of 8 — STJD v2 files
    /// always are, and callers check before taking the mapped path.
    pub fn words(&self) -> &[u64] {
        assert!(
            self.len.is_multiple_of(8),
            "mapping length {} is not word-aligned",
            self.len
        );
        // SAFETY: mappings are page-aligned (so ≥ 8-aligned) and the
        // length is a whole number of words; any bit pattern is a valid
        // u64.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u64>(), self.len / 8) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

impl stj_core::WordRegion for Mapping {
    fn words(&self) -> &[u64] {
        Mapping::words(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("stj-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        if !Mapping::supported() {
            return;
        }
        let words: Vec<u64> = (0..1024u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = tmp("roundtrip", &bytes);
        let file = File::open(&path).unwrap();
        let m = Mapping::map(&file).unwrap();
        drop(file); // the mapping must outlive the handle
        assert_eq!(m.len(), bytes.len());
        assert_eq!(m.bytes(), &bytes[..]);
        assert_eq!(m.words(), &words[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_empty_files() {
        let path = tmp("empty", &[]);
        let file = File::open(&path).unwrap();
        assert!(Mapping::map(&file).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unaligned_length_panics_on_word_view() {
        if !Mapping::supported() {
            return;
        }
        let path = tmp("unaligned", &[1, 2, 3]);
        let file = File::open(&path).unwrap();
        let m = Mapping::map(&file).unwrap();
        assert_eq!(m.bytes(), &[1, 2, 3]);
        assert!(std::panic::catch_unwind(|| m.words().len()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
