//! WKT file IO: one polygon per line, the interchange format used by
//! common GIS tooling exports (`ogr2ogr`, PostGIS `ST_AsText` dumps).

use std::io::{BufRead, Write};
use stj_geom::wkt::{polygon_from_wkt, polygon_to_wkt, WktError};
use stj_geom::Polygon;

/// Errors raised while reading WKT files.
#[derive(Debug)]
pub enum WktIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line failed to parse; payload carries the 1-based line number.
    Parse(usize, WktError),
}

impl std::fmt::Display for WktIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WktIoError::Io(e) => write!(f, "io error: {e}"),
            WktIoError::Parse(line, e) => write!(f, "line {line}: {e}"),
        }
    }
}

impl std::error::Error for WktIoError {}

impl From<std::io::Error> for WktIoError {
    fn from(e: std::io::Error) -> Self {
        WktIoError::Io(e)
    }
}

/// Reads polygons from a WKT-per-line reader. Blank lines and `#`
/// comment lines are skipped.
pub fn read_wkt_polygons<R: BufRead>(r: R) -> Result<Vec<Polygon>, WktIoError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let poly = polygon_from_wkt(trimmed).map_err(|e| WktIoError::Parse(idx + 1, e))?;
        out.push(poly);
    }
    Ok(out)
}

/// Writes polygons as WKT, one per line.
pub fn write_wkt_polygons<W: Write>(w: &mut W, polys: &[Polygon]) -> std::io::Result<()> {
    for p in polys {
        writeln!(w, "{}", polygon_to_wkt(p))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::Rect;

    #[test]
    fn roundtrip() {
        let polys = vec![
            Polygon::rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            Polygon::from_coords(
                vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
                vec![vec![(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]],
            )
            .unwrap(),
        ];
        let mut buf = Vec::new();
        write_wkt_polygons(&mut buf, &polys).unwrap();
        let parsed = read_wkt_polygons(buf.as_slice()).unwrap();
        assert_eq!(parsed, polys);
    }

    #[test]
    fn skips_blanks_and_comments() {
        let text = "\n# header comment\nPOLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))\n\n";
        let parsed = read_wkt_polygons(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))\nGARBAGE\n";
        match read_wkt_polygons(text.as_bytes()) {
            Err(WktIoError::Parse(line, _)) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[track_caller]
    fn expect_parse_error(text: &str, line: usize) {
        match read_wkt_polygons(text.as_bytes()) {
            Err(WktIoError::Parse(got, e)) => {
                assert_eq!(got, line, "wrong line for {e}");
            }
            other => panic!("expected parse error at line {line}, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_finite_coordinates_with_line_numbers() {
        // Literal NaN/inf tokens.
        expect_parse_error("# ok\nPOLYGON ((0 0, 1 0, NaN 1, 0 0))\n", 2);
        expect_parse_error("POLYGON ((0 0, inf 0, 1 1, 0 0))\n", 1);
        // Overflowing scientific notation parses to f64 infinity and must
        // be rejected too, not silently constructed.
        expect_parse_error(
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))\nPOLYGON ((0 0, 1e999 0, 1 1, 0 0))\n",
            2,
        );
    }

    #[test]
    fn rejects_rings_with_too_few_distinct_points() {
        // Fewer than 3 points.
        expect_parse_error("POLYGON ((0 0, 1 1, 0 0))\n", 1);
        // 4 points, but only 2 distinct (non-consecutive duplicates).
        expect_parse_error("POLYGON ((0 0, 1 1, 0 0, 1 1, 0 0))\n", 1);
        // A degenerate hole poisons the polygon as well.
        expect_parse_error(
            "POLYGON ((0 0, 9 0, 9 9, 0 9, 0 0), (2 2, 3 3, 2 2, 3 3, 2 2))\n",
            1,
        );
    }
}
