//! STJM: the shard manifest of an out-of-core dataset.
//!
//! `stj preprocess --shards N` splits a dataset into Hilbert-range
//! shards — each a plain STJD v2 file on the *same grid* (so APRIL
//! intervals are identical to the unsharded build) — and writes one
//! manifest describing the set:
//!
//! ```text
//! magic    b"STJM"
//! version  u32 (1)
//! grid     extent: 4 × f64, order: u32     (same encoding as STJD v2)
//! name     u32 length + UTF-8 bytes, zero-padded to an 8-byte boundary
//! counts   2 × u64: n_shards, total_objects
//! per shard (n_shards records):
//!   file     u32 length + UTF-8 bytes, zero-padded (bare file name,
//!            resolved relative to the manifest's directory)
//!   n_objects, d_lo, d_hi   3 × u64 (inclusive Hilbert key range)
//!   extent   4 × f64 (union of member MBRs)
//!   ids      n_objects × u32, zero-padded to an 8-byte boundary
//!            (shard-local index → original dataset index)
//! ```
//!
//! The `ids` tables are what make sharded joins *bit-identical* to the
//! single-arena join: shard-local link indices are remapped through them
//! before merging. Reading validates that the tables form an exact
//! permutation of `0..total_objects` — a manifest that drops or
//! duplicates an object is rejected up front, never silently joined.
//! Shard file names must be bare (no path separators, no `..`): a
//! hostile manifest cannot reach outside its own directory.

use crate::binary::StoreError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use stj_geom::Rect;
use stj_raster::Grid;

/// Magic bytes of an STJM manifest.
pub const MANIFEST_MAGIC: &[u8; 4] = b"STJM";
const MANIFEST_VERSION: u32 = 1;

/// Ceiling on the shard count: far above any sane configuration, low
/// enough that a hostile header cannot drive allocation.
const MAX_SHARDS: u64 = 1 << 20;
/// Ceiling on name/file-name lengths (shared with the v2 header guard).
const MAX_NAME: usize = 1 << 20;

fn fmt_err(msg: impl Into<String>) -> StoreError {
    StoreError::Format(msg.into())
}

/// One shard of a sharded dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardEntry {
    /// Bare file name of the shard's STJD v2 file, next to the manifest.
    pub file: String,
    /// Smallest member Hilbert key.
    pub d_lo: u64,
    /// Largest member Hilbert key (inclusive).
    pub d_hi: u64,
    /// Union of member MBRs — the driver's overlap test.
    pub extent: Rect,
    /// Shard-local index → original dataset index.
    pub ids: Vec<u32>,
}

/// A parsed, validated shard manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Dataset name (matches every shard file's arena name).
    pub name: String,
    /// The shared grid all shards were rasterized on.
    pub grid: Grid,
    /// The shards, in Hilbert order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Total object count across all shards.
    pub fn total_objects(&self) -> u64 {
        self.shards.iter().map(|s| s.ids.len() as u64).sum()
    }
}

/// Zero padding after a `len`-byte field to reach an 8-byte boundary.
fn pad8(len: usize) -> usize {
    (8 - len % 8) % 8
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), StoreError> {
    let b = s.as_bytes();
    w.write_all(&(b.len() as u32).to_le_bytes())?;
    w.write_all(b)?;
    w.write_all(&[0u8; 8][..pad8(b.len())])?;
    Ok(())
}

fn read_str<R: Read>(r: &mut R, what: &str) -> Result<String, StoreError> {
    let len = read_u32(r)? as usize;
    if len > MAX_NAME {
        return Err(fmt_err(format!("unreasonable {what} length")));
    }
    let mut bytes = vec![0u8; len + pad8(len)];
    r.read_exact(&mut bytes)?;
    bytes.truncate(len);
    String::from_utf8(bytes).map_err(|_| fmt_err(format!("{what} is not UTF-8")))
}

/// Writes a manifest. Callers are expected to pass shards whose `ids`
/// partition `0..total`; [`read_manifest`] enforces it on the way back.
pub fn write_manifest<W: Write>(w: &mut W, m: &ShardManifest) -> Result<(), StoreError> {
    w.write_all(MANIFEST_MAGIC)?;
    w.write_all(&MANIFEST_VERSION.to_le_bytes())?;
    for v in [
        m.grid.extent().min.x,
        m.grid.extent().min.y,
        m.grid.extent().max.x,
        m.grid.extent().max.y,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&m.grid.order().to_le_bytes())?;
    write_str(w, &m.name)?;
    w.write_all(&(m.shards.len() as u64).to_le_bytes())?;
    w.write_all(&m.total_objects().to_le_bytes())?;
    for s in &m.shards {
        write_str(w, &s.file)?;
        for v in [s.ids.len() as u64, s.d_lo, s.d_hi] {
            w.write_all(&v.to_le_bytes())?;
        }
        for v in [
            s.extent.min.x,
            s.extent.min.y,
            s.extent.max.x,
            s.extent.max.y,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        let mut buf = Vec::with_capacity(s.ids.len() * 4);
        for id in &s.ids {
            buf.extend_from_slice(&id.to_le_bytes());
        }
        buf.resize(buf.len() + pad8(buf.len()), 0);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Reads and fully validates a manifest: header sanity, bare shard file
/// names, finite per-shard extents, ordered Hilbert ranges, and `ids`
/// tables forming an exact permutation of `0..total_objects`.
pub fn read_manifest<R: Read>(r: &mut R) -> Result<ShardManifest, StoreError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MANIFEST_MAGIC {
        return Err(fmt_err("bad magic (not an STJM manifest)"));
    }
    let version = read_u32(r)?;
    if version != MANIFEST_VERSION {
        return Err(fmt_err(format!("unsupported manifest version {version}")));
    }
    let (minx, miny, maxx, maxy) = (read_f64(r)?, read_f64(r)?, read_f64(r)?, read_f64(r)?);
    if !(minx < maxx && miny < maxy) {
        return Err(fmt_err("degenerate grid extent"));
    }
    let order = read_u32(r)?;
    if !(1..=16).contains(&order) {
        return Err(fmt_err(format!("grid order {order} out of range")));
    }
    let grid = Grid::new(Rect::from_coords(minx, miny, maxx, maxy), order);
    let name = read_str(r, "dataset name")?;

    let n_shards = read_u64(r)?;
    if n_shards > MAX_SHARDS {
        return Err(fmt_err(format!("shard count {n_shards} exceeds maximum")));
    }
    let total = read_u64(r)?;
    if total > u32::MAX as u64 {
        return Err(fmt_err(format!(
            "total object count {total} exceeds the u32 index space"
        )));
    }

    let mut shards = Vec::new();
    let mut seen = vec![false; total as usize];
    let mut remaining = total;
    for k in 0..n_shards {
        let file = read_str(r, "shard file name")?;
        if file.is_empty()
            || file == ".."
            || file.contains('/')
            || file.contains('\\')
            || file.contains('\0')
        {
            return Err(fmt_err(format!("shard {k}: unsafe file name {file:?}")));
        }
        let n_objects = read_u64(r)?;
        if n_objects == 0 {
            return Err(fmt_err(format!("shard {k}: empty shard")));
        }
        if n_objects > remaining {
            return Err(fmt_err(format!(
                "shard {k}: {n_objects} objects exceed the {remaining} unassigned"
            )));
        }
        remaining -= n_objects;
        let (d_lo, d_hi) = (read_u64(r)?, read_u64(r)?);
        if d_lo > d_hi {
            return Err(fmt_err(format!("shard {k}: inverted Hilbert range")));
        }
        let (exminx, exminy, exmaxx, exmaxy) =
            (read_f64(r)?, read_f64(r)?, read_f64(r)?, read_f64(r)?);
        if !(exminx <= exmaxx && exminy <= exmaxy) {
            return Err(fmt_err(format!("shard {k}: inverted extent")));
        }
        let extent = Rect::from_coords(exminx, exminy, exmaxx, exmaxy);

        // Bounded by the n_objects ≤ remaining check above, which is in
        // turn bounded by the u32-checked total.
        let mut buf = vec![0u8; n_objects as usize * 4];
        r.read_exact(&mut buf)?;
        let mut pad = [0u8; 8];
        r.read_exact(&mut pad[..pad8(buf.len())])?;
        let mut ids = Vec::with_capacity(n_objects as usize);
        for c in buf.chunks_exact(4) {
            let id = u32::from_le_bytes(c.try_into().unwrap());
            match seen.get_mut(id as usize) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => {
                    return Err(fmt_err(format!("shard {k}: duplicate object id {id}")));
                }
                None => {
                    return Err(fmt_err(format!(
                        "shard {k}: object id {id} out of range (total {total})"
                    )));
                }
            }
            ids.push(id);
        }
        shards.push(ShardEntry {
            file,
            d_lo,
            d_hi,
            extent,
            ids,
        });
    }
    if remaining != 0 {
        return Err(fmt_err(format!(
            "{remaining} of {total} objects assigned to no shard"
        )));
    }
    Ok(ShardManifest { name, grid, shards })
}

/// Writes a manifest to `path`.
pub fn write_manifest_file(path: &Path, m: &ShardManifest) -> Result<(), StoreError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_manifest(&mut w, m)?;
    w.flush()?;
    Ok(())
}

/// Reads and validates the manifest at `path`.
pub fn read_manifest_file(path: &Path) -> Result<ShardManifest, StoreError> {
    read_manifest(&mut BufReader::new(std::fs::File::open(path)?))
}

/// Whether the file at `path` starts with the STJM magic (a cheap
/// 4-byte sniff — full validation happens on open).
pub fn is_manifest_file(path: &Path) -> bool {
    let mut magic = [0u8; 4];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut magic).is_ok() && &magic == MANIFEST_MAGIC,
        Err(_) => false,
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let v = f64::from_le_bytes(b);
    if !v.is_finite() {
        return Err(fmt_err("non-finite manifest coordinate"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            name: "OBE".to_string(),
            grid: Grid::new(Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 12),
            shards: vec![
                ShardEntry {
                    file: "obe.0.stjd".to_string(),
                    d_lo: 0,
                    d_hi: 901,
                    extent: Rect::from_coords(0.0, 0.0, 510.0, 498.0),
                    ids: vec![4, 0, 2],
                },
                ShardEntry {
                    file: "obe.1.stjd".to_string(),
                    d_lo: 902,
                    d_hi: 16_383,
                    extent: Rect::from_coords(480.0, 12.0, 1000.0, 1000.0),
                    ids: vec![1, 3],
                },
            ],
        }
    }

    fn encode(m: &ShardManifest) -> Vec<u8> {
        let mut buf = Vec::new();
        write_manifest(&mut buf, m).unwrap();
        buf
    }

    #[test]
    fn manifest_roundtrips() {
        let m = sample();
        let buf = encode(&m);
        assert_eq!(buf.len() % 8, 0, "manifests are word-aligned");
        let back = read_manifest(&mut buf.as_slice()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_objects(), 5);
    }

    #[test]
    fn empty_manifest_roundtrips() {
        let m = ShardManifest {
            name: "none".to_string(),
            grid: Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 4),
            shards: Vec::new(),
        };
        let back = read_manifest(&mut encode(&m).as_slice()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_objects(), 0);
    }

    #[test]
    fn manifest_rejects_truncation_at_every_byte() {
        let buf = encode(&sample());
        for cut in 0..buf.len() {
            assert!(
                read_manifest(&mut &buf[..cut]).is_err(),
                "cut at {cut}/{} succeeded",
                buf.len()
            );
        }
        assert!(read_manifest(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn manifest_survives_byte_flips_without_panicking() {
        let buf = encode(&sample());
        for pos in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0xFF;
            // Either a clean error or a (semantically different but)
            // structurally valid parse — never a panic.
            let _ = read_manifest(&mut corrupt.as_slice());
        }
    }

    #[test]
    fn manifest_rejects_hostile_headers() {
        let m = sample();
        let buf = encode(&m);
        // Field offsets: magic+version (8) + grid (36) + name (4 + 3
        // bytes + 5 pad).
        let shard_count_off = 8 + 36 + 12;
        let total_off = shard_count_off + 8;

        // Hostile shard count: rejected at the ceiling, no allocation.
        let mut hostile = buf.clone();
        hostile[shard_count_off..shard_count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_manifest(&mut hostile.as_slice()).is_err());

        // Hostile total: beyond the u32 index space.
        let mut hostile = buf.clone();
        hostile[total_off..total_off + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(read_manifest(&mut hostile.as_slice()).is_err());

        // Undersized total: ids fall out of range.
        let mut hostile = buf.clone();
        hostile[total_off..total_off + 8].copy_from_slice(&2u64.to_le_bytes());
        assert!(read_manifest(&mut hostile.as_slice()).is_err());

        // Oversized total: objects left unassigned.
        let mut hostile = buf;
        hostile[total_off..total_off + 8].copy_from_slice(&6u64.to_le_bytes());
        assert!(read_manifest(&mut hostile.as_slice()).is_err());
    }

    #[test]
    fn manifest_rejects_bad_shard_sets() {
        // Duplicate id across shards.
        let mut m = sample();
        m.shards[1].ids = vec![1, 0];
        assert!(read_manifest(&mut encode(&m).as_slice()).is_err());

        // Inverted Hilbert range.
        let mut m = sample();
        (m.shards[0].d_lo, m.shards[0].d_hi) = (10, 3);
        assert!(read_manifest(&mut encode(&m).as_slice()).is_err());

        // Inverted extent.
        let mut m = sample();
        m.shards[0].extent.min.x = 1e9;
        assert!(read_manifest(&mut encode(&m).as_slice()).is_err());

        // Non-finite extent.
        let mut m = sample();
        m.shards[0].extent.max.y = f64::INFINITY;
        assert!(read_manifest(&mut encode(&m).as_slice()).is_err());

        // Empty shard.
        let mut m = sample();
        m.shards[0].ids = vec![4, 0, 2];
        m.shards.push(ShardEntry {
            file: "obe.2.stjd".to_string(),
            d_lo: 0,
            d_hi: 0,
            extent: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            ids: Vec::new(),
        });
        assert!(read_manifest(&mut encode(&m).as_slice()).is_err());

        // Path traversal in a shard file name.
        for evil in ["../obe.0.stjd", "a/b.stjd", "a\\b.stjd", "", ".."] {
            let mut m = sample();
            m.shards[0].file = evil.to_string();
            assert!(
                read_manifest(&mut encode(&m).as_slice()).is_err(),
                "{evil:?} accepted"
            );
        }
    }

    #[test]
    fn manifest_file_roundtrip_and_sniff() {
        let dir = std::env::temp_dir().join(format!("stj-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.stjm");
        let m = sample();
        write_manifest_file(&path, &m).unwrap();
        assert!(is_manifest_file(&path));
        assert_eq!(read_manifest_file(&path).unwrap(), m);
        let other = dir.join("not-a-manifest");
        std::fs::write(&other, b"STJD....").unwrap();
        assert!(!is_manifest_file(&other));
        assert!(!is_manifest_file(&dir.join("missing")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
