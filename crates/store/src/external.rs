//! File-level out-of-core joins.
//!
//! [`ShardedDataset::open`] accepts either an STJM manifest (a Hilbert
//! shard set written by `stj preprocess --shards N`) or a plain STJD
//! dataset, which it treats as a single shard spanning the whole grid —
//! so the external driver joins any combination of sharded and
//! unsharded inputs. [`external_join_files`] then drives
//! [`stj_core::external_join`] with loaders that `open_arena` each
//! shard on demand: on capable targets every shard is memory-mapped, at
//! most two are resident at a time, and resident here means "pages the
//! executor actually touched", since the mapping is demand-paged.
//!
//! [`write_sharded`] is the preprocessing counterpart: partition an
//! arena, write each shard as a v2 file next to the manifest, emit the
//! manifest.

use crate::binary::StoreError;
use crate::manifest::{
    is_manifest_file, read_manifest_file, write_manifest_file, ShardEntry, ShardManifest,
};
use crate::v2::{dataset_info, open_arena, write_arena_v2};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use stj_core::sharded::{external_join, ShardSet, Side};
use stj_core::{hilbert_partition, DatasetArena, JoinResult, TopologyJoin};
use stj_geom::Rect;
use stj_raster::Grid;

fn fmt_err(msg: impl Into<String>) -> StoreError {
    StoreError::Format(msg.into())
}

/// One join input for the external driver: a set of shard files plus
/// the metadata needed to schedule and remap without loading anything.
pub struct ShardedDataset {
    source: PathBuf,
    name: String,
    grid: Grid,
    files: Vec<PathBuf>,
    extents: Vec<Rect>,
    ids: Vec<Vec<u32>>,
    sharded: bool,
}

impl ShardedDataset {
    /// Opens a manifest or a plain dataset file. Only headers are read:
    /// no shard is loaded until the driver asks for it.
    pub fn open(path: &Path) -> Result<ShardedDataset, StoreError> {
        let source = path.canonicalize().unwrap_or_else(|_| path.to_path_buf());
        if is_manifest_file(path) {
            let m = read_manifest_file(path)?;
            let dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
            let mut files = Vec::with_capacity(m.shards.len());
            let mut extents = Vec::with_capacity(m.shards.len());
            let mut ids = Vec::with_capacity(m.shards.len());
            for e in m.shards {
                files.push(dir.join(&e.file));
                extents.push(e.extent);
                ids.push(e.ids);
            }
            Ok(ShardedDataset {
                source,
                name: m.name,
                grid: m.grid,
                files,
                extents,
                ids,
                sharded: true,
            })
        } else {
            let info = dataset_info(path)?;
            if info.n_objects > u32::MAX as u64 {
                return Err(fmt_err(format!(
                    "{} objects exceed the u32 index space",
                    info.n_objects
                )));
            }
            let grid = Grid::new(info.extent, info.order);
            Ok(ShardedDataset {
                source,
                name: info.name,
                grid,
                files: vec![path.to_path_buf()],
                // The grid extent is a superset of every member MBR
                // candidate region, so a single pseudo-shard always
                // participates in the overlap walk.
                extents: vec![info.extent],
                ids: vec![(0..info.n_objects as u32).collect()],
                sharded: false,
            })
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared rasterization grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of shards (1 for a plain dataset).
    pub fn n_shards(&self) -> usize {
        self.files.len()
    }

    /// Whether the input was an STJM manifest.
    pub fn is_sharded(&self) -> bool {
        self.sharded
    }

    /// Total object count across all shards.
    pub fn total_objects(&self) -> u64 {
        self.ids.iter().map(|v| v.len() as u64).sum()
    }

    /// Loads shard `i` (mapped on capable targets) and cross-checks it
    /// against the manifest: same grid, same name, expected count.
    pub fn load_shard(&self, i: usize) -> Result<Arc<DatasetArena>, StoreError> {
        let (arena, grid) = open_arena(&self.files[i])?;
        let what = self.files[i].display();
        if grid != self.grid {
            return Err(fmt_err(format!("shard {what}: grid differs from manifest")));
        }
        if arena.len() != self.ids[i].len() {
            return Err(fmt_err(format!(
                "shard {what}: {} objects, manifest says {}",
                arena.len(),
                self.ids[i].len()
            )));
        }
        if arena.name() != self.name {
            return Err(fmt_err(format!(
                "shard {what}: dataset name {:?} != manifest name {:?}",
                arena.name(),
                self.name
            )));
        }
        Ok(Arc::new(arena))
    }
}

/// Runs the out-of-core join over two shard sets. Links come back with
/// original dataset indices, sorted by `(r, s)` — bit-identical to the
/// single-arena join (invariant (g) of `stj-check`). See
/// [`stj_core::external_join`] for the residency contract.
pub fn external_join_files(
    join: &TopologyJoin,
    left: &ShardedDataset,
    right: &ShardedDataset,
) -> Result<JoinResult, StoreError> {
    if left.grid != right.grid {
        return Err(fmt_err(format!(
            "grid mismatch between {:?} and {:?}: datasets must be preprocessed on the same grid",
            left.name, right.name
        )));
    }
    let same_source = left.source == right.source;
    let lids: Vec<&[u32]> = left.ids.iter().map(Vec::as_slice).collect();
    let rids: Vec<&[u32]> = right.ids.iter().map(Vec::as_slice).collect();
    external_join(
        join,
        ShardSet {
            extents: &left.extents,
            ids: &lids,
        },
        ShardSet {
            extents: &right.extents,
            ids: &rids,
        },
        same_source,
        &mut |side, i| {
            let d = match side {
                Side::Left => left,
                Side::Right => right,
            };
            d.load_shard(i).map_err(|e| e.to_string())
        },
    )
    .map_err(StoreError::Format)
}

/// Partitions `arena` into at most `n` Hilbert shards and writes them
/// next to `manifest_path` as `<stem>.<k>.stjd` v2 files plus the STJM
/// manifest. Returns the manifest that was written.
pub fn write_sharded(
    manifest_path: &Path,
    arena: &DatasetArena,
    grid: &Grid,
    n: usize,
) -> Result<ShardManifest, StoreError> {
    let dir = manifest_path.parent().unwrap_or(Path::new("."));
    let stem = manifest_path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| fmt_err("manifest path has no usable file stem"))?;
    let plans = hilbert_partition(arena.mbrs(), grid, n);
    let mut shards = Vec::with_capacity(plans.len());
    for (k, plan) in plans.into_iter().enumerate() {
        let file = format!("{stem}.{k}.stjd");
        let shard = arena.select(arena.name(), &plan.ids);
        let mut w = BufWriter::new(std::fs::File::create(dir.join(&file))?);
        write_arena_v2(&mut w, &shard, grid)?;
        w.flush()?;
        shards.push(ShardEntry {
            file,
            d_lo: plan.d_lo,
            d_hi: plan.d_hi,
            extent: plan.extent,
            ids: plan.ids,
        });
    }
    let manifest = ShardManifest {
        name: arena.name().to_string(),
        grid: grid.clone(),
        shards,
    };
    write_manifest_file(manifest_path, &manifest)?;
    Ok(manifest)
}
