//! `stj-store`: persistence for preprocessed join inputs.
//!
//! APRIL approximations are computed once per object (the paper's
//! preprocessing step) and reused across joins; this crate provides the
//! storage side of that workflow:
//!
//! - [`binary`]: a compact, versioned binary format for a full
//!   [`Dataset`](stj_core::Dataset) — polygons, MBRs and `P`/`C`
//!   interval lists — plus the grid it was built on, so a join can start
//!   without re-rasterizing anything;
//! - [`wktio`]: plain-text WKT files (one geometry per line) for
//!   interchange with PostGIS/GEOS tooling.

pub mod binary;
pub mod wktio;

pub use binary::{read_dataset, write_dataset, StoreError};
pub use wktio::{read_wkt_polygons, write_wkt_polygons};
