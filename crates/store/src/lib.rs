//! `stj-store`: persistence for preprocessed join inputs.
//!
//! APRIL approximations are computed once per object (the paper's
//! preprocessing step) and reused across joins; this crate provides the
//! storage side of that workflow:
//!
//! - [`binary`]: the v1 record-per-object format for a full
//!   [`Dataset`](stj_core::Dataset) — polygons, MBRs and `P`/`C`
//!   interval lists — plus the grid it was built on, so a join can start
//!   without re-rasterizing anything;
//! - [`v2`]: the columnar STJD v2 format that bulk-loads (or zero-copy
//!   opens) straight into a [`stj_core::DatasetArena`], with version
//!   dispatch so v1 files keep working;
//! - [`wktio`]: plain-text WKT files (one geometry per line) for
//!   interchange with PostGIS/GEOS tooling.

pub mod binary;
pub mod external;
pub mod manifest;
pub mod mmap;
pub mod v2;
pub mod wktio;

pub use binary::{read_dataset, write_dataset, StoreError};
pub use external::{external_join_files, write_sharded, ShardedDataset};
pub use manifest::{
    is_manifest_file, read_manifest, read_manifest_file, write_manifest, write_manifest_file,
    ShardEntry, ShardManifest, MANIFEST_MAGIC,
};
pub use mmap::Mapping;
pub use v2::{
    dataset_info, open_arena, open_arena_from_bytes, read_arena, write_arena_v2, DatasetInfo,
};
pub use wktio::{read_wkt_polygons, write_wkt_polygons};
