//! Versioned binary format for preprocessed datasets.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"STJD"
//! version u32 (currently 1)
//! grid    extent: 4 × f64, order: u32
//! name    u32 length + UTF-8 bytes
//! count   u64 objects
//! per object:
//!   rings   u32 ring count (outer first)
//!   per ring: u32 vertex count, then x,y f64 pairs
//!   P list  u32 interval count, then (start, end) u64 pairs
//!   C list  u32 interval count, then (start, end) u64 pairs
//! ```
//!
//! MBRs are rederived from the polygons on load (cheaper than storing
//! and guaranteed consistent).

use std::io::{self, Read, Write};
use stj_core::{Dataset, SpatialObject};
use stj_geom::{Point, Polygon, Rect, Ring};
use stj_raster::{AprilApprox, Grid, IntervalList};

pub(crate) const MAGIC: &[u8; 4] = b"STJD";
const VERSION: u32 = 1;

/// Upper bound on any single `Vec::with_capacity` derived from an
/// untrusted length field. Counts above this are still honored — the
/// vector just grows by doubling as elements actually arrive — so a
/// hostile header claiming 2^26 vertices costs nothing up front: the
/// very next `read_exact` hits EOF and fails cleanly instead of first
/// committing gigabytes.
const MAX_TRUSTED_PREALLOC: usize = 1 << 12;

/// Preallocation for an untrusted element count.
#[inline]
fn bounded_capacity(n: usize) -> usize {
    n.min(MAX_TRUSTED_PREALLOC)
}

/// Errors raised by dataset (de)serialization.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Not an stj dataset file, or an unsupported version.
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Format(s) => write!(f, "format error: {s}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Writes a preprocessed dataset and its grid.
pub fn write_dataset<W: Write>(w: &mut W, ds: &Dataset, grid: &Grid) -> Result<(), StoreError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    for v in [
        grid.extent().min.x,
        grid.extent().min.y,
        grid.extent().max.x,
        grid.extent().max.y,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&grid.order().to_le_bytes())?;
    let name = ds.name.as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(ds.objects.len() as u64).to_le_bytes())?;
    for obj in &ds.objects {
        write_polygon(w, &obj.polygon)?;
        write_intervals(w, &obj.april.p)?;
        write_intervals(w, &obj.april.c)?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`], returning it with its
/// grid.
pub fn read_dataset<R: Read>(r: &mut R) -> Result<(Dataset, Grid), StoreError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::Format("bad magic (not an STJD file)".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(StoreError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    read_dataset_v1_body(r)
}

/// The v1 payload after magic + version (shared with the
/// version-dispatching reader in [`crate::v2`]).
pub(crate) fn read_dataset_v1_body<R: Read>(r: &mut R) -> Result<(Dataset, Grid), StoreError> {
    let (minx, miny, maxx, maxy) = (read_f64(r)?, read_f64(r)?, read_f64(r)?, read_f64(r)?);
    if !(minx < maxx && miny < maxy) {
        return Err(StoreError::Format("degenerate grid extent".into()));
    }
    let order = read_u32(r)?;
    if !(1..=16).contains(&order) {
        return Err(StoreError::Format(format!(
            "grid order {order} out of range"
        )));
    }
    let grid = Grid::new(Rect::from_coords(minx, miny, maxx, maxy), order);

    let name_len = read_u32(r)? as usize;
    if name_len > 1 << 20 {
        return Err(StoreError::Format("unreasonable name length".into()));
    }
    let mut name_bytes = vec![0u8; name_len];
    r.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes)
        .map_err(|_| StoreError::Format("dataset name is not UTF-8".into()))?;

    let count = read_u64(r)? as usize;
    let mut objects = Vec::with_capacity(bounded_capacity(count));
    for _ in 0..count {
        let polygon = read_polygon(r)?;
        let p = read_intervals(r)?;
        let c = read_intervals(r)?;
        objects.push(SpatialObject::from_parts(polygon, AprilApprox { p, c }));
    }
    Ok((Dataset { name, objects }, grid))
}

fn write_polygon<W: Write>(w: &mut W, poly: &Polygon) -> Result<(), StoreError> {
    let rings = 1 + poly.holes().len();
    w.write_all(&(rings as u32).to_le_bytes())?;
    write_ring(w, poly.outer())?;
    for h in poly.holes() {
        write_ring(w, h)?;
    }
    Ok(())
}

fn write_ring<W: Write>(w: &mut W, ring: &Ring) -> Result<(), StoreError> {
    w.write_all(&(ring.len() as u32).to_le_bytes())?;
    for v in ring.vertices() {
        w.write_all(&v.x.to_le_bytes())?;
        w.write_all(&v.y.to_le_bytes())?;
    }
    Ok(())
}

fn read_polygon<R: Read>(r: &mut R) -> Result<Polygon, StoreError> {
    let rings = read_u32(r)? as usize;
    if rings == 0 || rings > 1 << 20 {
        return Err(StoreError::Format(format!("bad ring count {rings}")));
    }
    let outer = read_ring(r)?;
    let mut holes = Vec::with_capacity(bounded_capacity(rings - 1));
    for _ in 1..rings {
        holes.push(read_ring(r)?);
    }
    Ok(Polygon::new(outer, holes))
}

fn read_ring<R: Read>(r: &mut R) -> Result<Ring, StoreError> {
    let n = read_u32(r)? as usize;
    if !(3..=1 << 26).contains(&n) {
        return Err(StoreError::Format(format!("bad vertex count {n}")));
    }
    let mut pts = Vec::with_capacity(bounded_capacity(n));
    for _ in 0..n {
        pts.push(Point::new(read_f64(r)?, read_f64(r)?));
    }
    Ring::new(pts).map_err(|e| StoreError::Format(format!("invalid ring: {e}")))
}

fn write_intervals<W: Write>(w: &mut W, list: &IntervalList) -> Result<(), StoreError> {
    w.write_all(&(list.len() as u32).to_le_bytes())?;
    for &(s, e) in list.intervals() {
        w.write_all(&s.to_le_bytes())?;
        w.write_all(&e.to_le_bytes())?;
    }
    Ok(())
}

fn read_intervals<R: Read>(r: &mut R) -> Result<IntervalList, StoreError> {
    let n = read_u32(r)? as usize;
    if n > 1 << 28 {
        return Err(StoreError::Format(format!("bad interval count {n}")));
    }
    let mut ranges = Vec::with_capacity(bounded_capacity(n));
    for _ in 0..n {
        let s = read_u64(r)?;
        let e = read_u64(r)?;
        if e <= s {
            return Err(StoreError::Format(format!("empty interval [{s},{e})")));
        }
        ranges.push((s, e));
    }
    Ok(IntervalList::from_ranges(ranges))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let v = f64::from_le_bytes(b);
    if !v.is_finite() {
        return Err(StoreError::Format("non-finite coordinate".into()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_datagen::{generate, DatasetId};

    fn sample_dataset() -> (Dataset, Grid) {
        let polys = generate(DatasetId::OLE, 0.005);
        let mut extent = Rect::empty();
        for p in &polys {
            extent.grow_rect(p.mbr());
        }
        let grid = Grid::new(extent, 10);
        (Dataset::build("OLE", polys, &grid), grid)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (ds, grid) = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        let (ds2, grid2) = read_dataset(&mut buf.as_slice()).unwrap();
        assert_eq!(ds2.name, ds.name);
        assert_eq!(grid2, grid);
        assert_eq!(ds2.len(), ds.len());
        for (a, b) in ds.objects.iter().zip(&ds2.objects) {
            assert_eq!(a.polygon, b.polygon);
            assert_eq!(a.mbr, b.mbr);
            assert_eq!(a.april, b.april);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = b"NOPE".to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            read_dataset(&mut buf.as_slice()),
            Err(StoreError::Format(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let (ds, grid) = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        buf[4] = 99; // corrupt the version field
        assert!(matches!(
            read_dataset(&mut buf.as_slice()),
            Err(StoreError::Format(_))
        ));
    }

    /// A dataset small enough that the exhaustive truncation sweep
    /// stays cheap, yet exercising every record type (holes, P and C
    /// interval lists).
    fn tiny_dataset() -> (Dataset, Grid) {
        let polys = vec![
            Polygon::rect(Rect::from_coords(5.0, 5.0, 40.0, 40.0)),
            Polygon::from_coords(
                vec![(50.0, 10.0), (90.0, 10.0), (90.0, 45.0), (50.0, 45.0)],
                vec![vec![(60.0, 20.0), (80.0, 20.0), (80.0, 35.0), (60.0, 35.0)]],
            )
            .unwrap(),
            Polygon::from_coords(vec![(10.0, 60.0), (45.0, 60.0), (20.0, 90.0)], vec![]).unwrap(),
        ];
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 6);
        (Dataset::build("tiny", polys, &grid), grid)
    }

    #[test]
    fn rejects_truncation_at_every_byte() {
        let (ds, grid) = tiny_dataset();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        // Cutting the file at EVERY byte offset must fail cleanly —
        // never panic, never succeed with partial data.
        for cut in 0..buf.len() {
            let err = read_dataset(&mut buf[..cut].as_ref());
            assert!(err.is_err(), "cut at {cut}/{} succeeded", buf.len());
        }
        assert!(read_dataset(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn hostile_counts_fail_without_allocating() {
        let (ds, grid) = tiny_dataset();
        let mut valid = Vec::new();
        write_dataset(&mut valid, &ds, &grid).unwrap();
        // Byte offset of the object-count u64: after magic (4), version
        // (4), extent (32), order (4), name length (4) + name bytes.
        let name_off = 4 + 4 + 32 + 4;
        let count_off = name_off + 4 + ds.name.len();

        // A header claiming u64::MAX objects (then EOF) must error out,
        // not preallocate.
        let mut buf = valid[..count_off].to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_dataset(&mut buf.as_slice()),
            Err(StoreError::Io(_) | StoreError::Format(_))
        ));

        // Max-allowed vertex count (2^26, passes the range check) with
        // no vertex data: must fail on EOF, not OOM on with_capacity.
        let mut buf = valid[..count_off].to_vec();
        buf.extend_from_slice(&1u64.to_le_bytes()); // one object
        buf.extend_from_slice(&1u32.to_le_bytes()); // one ring
        buf.extend_from_slice(&(1u32 << 26).to_le_bytes()); // huge ring
        assert!(read_dataset(&mut buf.as_slice()).is_err());

        // Same for a huge interval count on the P list.
        let mut buf = valid[..count_off].to_vec();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // 3 vertices
        for v in [0.0f64, 0.0, 10.0, 0.0, 0.0, 10.0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&(1u32 << 28).to_le_bytes()); // huge P list
        assert!(read_dataset(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_interval_lists_are_rejected() {
        let (ds, grid) = tiny_dataset();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        // Flip every byte position in turn and demand no panic: either a
        // clean error or a (structurally re-validated) successful parse.
        for pos in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0xFF;
            let _ = read_dataset(&mut corrupt.as_slice());
        }
    }

    #[test]
    fn loaded_dataset_joins_identically() {
        use stj_core::TopologyJoin;
        let (ds, grid) = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        let (ds2, _) = read_dataset(&mut buf.as_slice()).unwrap();
        let (ar, ar2) = (ds.to_arena(), ds2.to_arena());
        let a = TopologyJoin::new().run(&ar, &ar);
        let b = TopologyJoin::new().run(&ar2, &ar2);
        assert_eq!(a.links, b.links);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 4);
        let ds = Dataset::build("empty", vec![], &grid);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, &grid).unwrap();
        let (ds2, _) = read_dataset(&mut buf.as_slice()).unwrap();
        assert!(ds2.is_empty());
        assert_eq!(ds2.name, "empty");
    }
}
