//! The boolean DE-9IM intersection matrix.

use std::fmt;

/// One of the three point-set parts of a geometry in the 9-intersection
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Part {
    /// The geometry's interior.
    Interior = 0,
    /// The geometry's boundary.
    Boundary = 1,
    /// The geometry's exterior.
    Exterior = 2,
}

/// A boolean DE-9IM matrix.
///
/// Cell `(row, col)` records whether `row`-part of the first geometry `r`
/// intersects `col`-part of the second geometry `s`. The paper (Sec 2.1)
/// works with the boolean matrix — mask matching (Table 1) only ever needs
/// `T`/`F` — so we store 9 bits rather than dimensions.
///
/// Flattened string codes read row-major: `II IB IE BI BB BE EI EB EE`,
/// e.g. `"FFTFFTTTT"` for two disjoint polygons.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct De9Im {
    bits: u16,
}

impl De9Im {
    /// The matrix with every cell `F`.
    pub const EMPTY: De9Im = De9Im { bits: 0 };
    /// The matrix with every cell `T` (the result of any proper boundary
    /// crossing between two areal geometries).
    pub const ALL_TRUE: De9Im = De9Im { bits: 0x1FF };
    /// The matrix of two disjoint non-empty areal geometries:
    /// `"FFTFFTTTT"`.
    pub const DISJOINT: De9Im = De9Im {
        bits: 0b111_100_100,
    };

    /// Builds a matrix from its flattened 9-character string code.
    ///
    /// # Panics
    /// Panics if `code` is not exactly nine `T`/`F` characters
    /// (lowercase accepted).
    pub fn from_code(code: &str) -> De9Im {
        assert_eq!(code.len(), 9, "DE-9IM code must have 9 characters");
        let mut bits = 0u16;
        for (i, c) in code.chars().enumerate() {
            match c {
                'T' | 't' => bits |= 1 << i,
                'F' | 'f' => {}
                other => panic!("invalid DE-9IM code character {other:?}"),
            }
        }
        De9Im { bits }
    }

    /// Reads cell `(row, col)`.
    #[inline]
    pub fn get(&self, row: Part, col: Part) -> bool {
        self.bits & (1 << (row as usize * 3 + col as usize)) != 0
    }

    /// Sets cell `(row, col)` to `value`.
    #[inline]
    pub fn set(&mut self, row: Part, col: Part, value: bool) {
        let bit = 1 << (row as usize * 3 + col as usize);
        if value {
            self.bits |= bit;
        } else {
            self.bits &= !bit;
        }
    }

    /// Sets cell `(row, col)` to `T` (convenience for accumulation).
    #[inline]
    pub fn mark(&mut self, row: Part, col: Part) {
        self.set(row, col, true);
    }

    /// The flattened row-major string code.
    pub fn code(&self) -> String {
        (0..9)
            .map(|i| if self.bits & (1 << i) != 0 { 'T' } else { 'F' })
            .collect()
    }

    /// The matrix for the arguments swapped (`relate(s, r)` from
    /// `relate(r, s)`): the transpose.
    pub fn transposed(&self) -> De9Im {
        let mut t = De9Im::EMPTY;
        for r in [Part::Interior, Part::Boundary, Part::Exterior] {
            for c in [Part::Interior, Part::Boundary, Part::Exterior] {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Raw bits, row-major, bit `i` = cell `i` (for compact storage).
    #[inline]
    pub fn bits(&self) -> u16 {
        self.bits
    }
}

impl fmt::Debug for De9Im {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "De9Im({})", self.code())
    }
}

impl fmt::Display for De9Im {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Part::*;

    #[test]
    fn code_roundtrip() {
        for code in ["FFTFFTTTT", "TFFFTFFFT", "TTTTTTTTT", "FFFFFFFFF"] {
            assert_eq!(De9Im::from_code(code).code(), code);
        }
        assert_eq!(De9Im::from_code("fftfftttt").code(), "FFTFFTTTT");
    }

    #[test]
    fn constants() {
        assert_eq!(De9Im::DISJOINT.code(), "FFTFFTTTT");
        assert_eq!(De9Im::ALL_TRUE.code(), "TTTTTTTTT");
        assert_eq!(De9Im::EMPTY.code(), "FFFFFFFFF");
    }

    #[test]
    fn get_set_cells() {
        let mut m = De9Im::EMPTY;
        m.mark(Interior, Boundary);
        m.mark(Exterior, Exterior);
        assert!(m.get(Interior, Boundary));
        assert!(m.get(Exterior, Exterior));
        assert!(!m.get(Boundary, Interior));
        assert_eq!(m.code(), "FTFFFFFFT");
        m.set(Interior, Boundary, false);
        assert_eq!(m.code(), "FFFFFFFFT");
    }

    #[test]
    fn transpose_swaps_roles() {
        // Disjoint is symmetric under transpose.
        assert_eq!(De9Im::DISJOINT.transposed(), De9Im::DISJOINT);
        // inside (r inside s): TFF FTF TTT ... the canonical inside code:
        // II=T, IB=F, IE=F, BI=F/T?, use a known pair: r strictly inside s
        // gives "TFFTFFTTT"? Interior(r)∩Exterior(s)=F, Boundary(r) in
        // Interior(s)=T, Exterior(r) covers everything of s: EI=T,EB=T.
        let inside = De9Im::from_code("TFFTFFTTT");
        let contains = inside.transposed();
        assert_eq!(contains.code(), "TTTFFTFFT");
        assert_eq!(contains.transposed(), inside);
    }

    #[test]
    #[should_panic]
    fn bad_code_length_panics() {
        let _ = De9Im::from_code("TTT");
    }

    #[test]
    #[should_panic]
    fn bad_code_char_panics() {
        let _ = De9Im::from_code("TTTTXTTTT");
    }
}
