//! DE-9IM matrix computation for areal geometries.
//!
//! This is the refinement oracle of the pipeline — the expensive step the
//! intermediate raster filters exist to avoid. The algorithm (see
//! DESIGN.md §2 for the full argument):
//!
//! 1. Find all boundary–boundary segment intersections with a plane sweep
//!    over segment MBRs.
//! 2. If any **proper crossing** exists, the matrix is all-`T`: at a
//!    transversal crossing each boundary locally passes from the other
//!    geometry's interior to its exterior, which populates every cell.
//! 3. Otherwise **node** both boundaries at the touch points and
//!    collinear-overlap endpoints. Every resulting sub-edge lies entirely
//!    in one part (interior/boundary/exterior) of the other geometry, so
//!    classifying its midpoint fills the boundary rows/columns exactly.
//! 4. The three interior/exterior cells (`II`, `IE`, `EI`) follow from
//!    the sub-edge classes plus representative interior points — one per
//!    connected interior component — which close the remaining
//!    shared-boundary cases (e.g. a polygon exactly filling another's
//!    hole).
//!
//! Inputs are assumed OGC-valid (simple rings, holes inside shells,
//! touching allowed, crossing not). Validity matches the datasets the
//! paper evaluates on; invalid inputs degrade gracefully to *some*
//! matrix but without the guarantees tested here.

use crate::matrix::{De9Im, Part};
use stj_geom::locator::EdgeSetLocator;
use stj_geom::multipolygon::Areal;
use stj_geom::polygon::Location;
use stj_geom::seg_intersect::SegSegIntersection;
use stj_geom::sweep::{boundary_pairs, EdgePairHit};
use stj_geom::{Point, Rect, Segment};

/// A geometry preprocessed for repeated `relate` calls: boundary edges,
/// strip-indexed point locator and representative interior points.
pub struct Prepared {
    edges: Vec<Segment>,
    locator: EdgeSetLocator,
    interior_points: Vec<Point>,
    mbr: Rect,
    num_vertices: usize,
}

impl Prepared {
    /// Preprocesses `g` (cost `O(n log n)` in the number of vertices).
    pub fn new<G: Areal>(g: &G) -> Prepared {
        let _site = stj_obs::alloc::enter(stj_obs::AllocSite::Noding);
        let mut edges = Vec::new();
        g.collect_edges(&mut edges);
        let locator = EdgeSetLocator::new(edges.clone());
        Prepared {
            edges,
            locator,
            interior_points: g.interior_points(),
            mbr: g.mbr(),
            num_vertices: g.num_vertices(),
        }
    }

    /// The geometry's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// Total vertex count (the paper's complexity measure).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Exact point location against the prepared geometry.
    #[inline]
    pub fn locate(&self, p: Point) -> Location {
        self.locator.locate(p)
    }
}

/// Computes the boolean DE-9IM matrix of `(r, s)`.
///
/// Convenience wrapper that prepares both geometries; use
/// [`relate_prepared`] when a geometry participates in many pairs.
pub fn relate<A: Areal, B: Areal>(r: &A, s: &B) -> De9Im {
    relate_prepared(&Prepared::new(r), &Prepared::new(s))
}

/// Computes the boolean DE-9IM matrix of `(r, s)` from prepared
/// geometries. Rows index parts of `r`, columns parts of `s`.
pub fn relate_prepared(r: &Prepared, s: &Prepared) -> De9Im {
    if !r.mbr.intersects(&s.mbr) {
        return De9Im::DISJOINT;
    }

    let hits = boundary_pairs(&r.edges, &s.edges, /*stop_on_proper=*/ true);
    if matches!(
        hits.last(),
        Some(EdgePairHit {
            kind: SegSegIntersection::Proper(_),
            ..
        })
    ) {
        // A transversal boundary crossing populates all nine cells.
        return De9Im::ALL_TRUE;
    }

    // Classify r's boundary sub-edges against s and vice versa.
    let r_flags = classify_boundary(&r.edges, &hits, HitSide::First, s);
    let s_flags = classify_boundary(&s.edges, &hits, HitSide::Second, r);

    let boundaries_touch = !hits.is_empty();
    debug_assert!(
        !(r_flags.on_boundary ^ s_flags.on_boundary),
        "collinear overlap must be seen from both sides"
    );

    let mut m = De9Im::EMPTY;
    m.set(Part::Boundary, Part::Interior, r_flags.in_interior);
    m.set(Part::Boundary, Part::Exterior, r_flags.in_exterior);
    m.set(Part::Interior, Part::Boundary, s_flags.in_interior);
    m.set(Part::Exterior, Part::Boundary, s_flags.in_exterior);
    m.set(Part::Boundary, Part::Boundary, boundaries_touch);
    m.set(Part::Exterior, Part::Exterior, true);

    // II: a boundary sub-edge of either geometry inside the other implies
    // interior overlap (open neighborhoods); otherwise only whole-interior
    // coincidences remain, closed by the representative points.
    let rep_r_in_s: Vec<Location> = r.interior_points.iter().map(|&p| s.locate(p)).collect();
    let rep_s_in_r: Vec<Location> = s.interior_points.iter().map(|&p| r.locate(p)).collect();
    let ii = r_flags.in_interior
        || s_flags.in_interior
        || rep_r_in_s.contains(&Location::Inside)
        || rep_s_in_r.contains(&Location::Inside);
    m.set(Part::Interior, Part::Interior, ii);

    // IE: r's interior reaches s's exterior.
    let ie = r_flags.in_exterior || s_flags.in_interior || rep_r_in_s.contains(&Location::Outside);
    m.set(Part::Interior, Part::Exterior, ie);

    // EI: s's interior reaches r's exterior.
    let ei = s_flags.in_exterior || r_flags.in_interior || rep_s_in_r.contains(&Location::Outside);
    m.set(Part::Exterior, Part::Interior, ei);

    m
}

/// Which side of an [`EdgePairHit`] an edge index refers to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HitSide {
    First,
    Second,
}

/// Aggregate classification of one geometry's boundary against the other
/// geometry: does any sub-edge lie in its interior / exterior / on its
/// boundary?
#[derive(Clone, Copy, Debug, Default)]
struct BoundaryFlags {
    in_interior: bool,
    in_exterior: bool,
    on_boundary: bool,
}

/// Splits every edge at its recorded intersection points and classifies
/// each sub-edge midpoint against `other`. Sub-edges falling inside a
/// collinear-overlap range are classified as on-boundary directly (their
/// midpoints are only floating-point-close to the other boundary).
fn classify_boundary(
    edges: &[Segment],
    hits: &[EdgePairHit],
    side: HitSide,
    other: &Prepared,
) -> BoundaryFlags {
    let _site = stj_obs::alloc::enter(stj_obs::AllocSite::SubEdge);
    // Group hits by edge index on our side.
    let mut per_edge: Vec<Vec<&EdgePairHit>> = vec![Vec::new(); edges.len()];
    for h in hits {
        let idx = match side {
            HitSide::First => h.ia,
            HitSide::Second => h.ib,
        };
        per_edge[idx].push(h);
    }

    let mut flags = BoundaryFlags::default();
    let mut ts: Vec<f64> = Vec::new();
    let mut on_ranges: Vec<(f64, f64)> = Vec::new();

    for (edge, edge_hits) in edges.iter().zip(&per_edge) {
        if flags.in_interior && flags.in_exterior && flags.on_boundary {
            break; // all information gathered
        }
        ts.clear();
        on_ranges.clear();
        ts.push(0.0);
        ts.push(1.0);
        for h in edge_hits {
            match h.kind {
                SegSegIntersection::Proper(p) | SegSegIntersection::Touch(p) => {
                    ts.push(param_on(edge, p));
                }
                SegSegIntersection::CollinearOverlap(p, q) => {
                    let (tp, tq) = (param_on(edge, p), param_on(edge, q));
                    let (lo, hi) = if tp <= tq { (tp, tq) } else { (tq, tp) };
                    ts.push(lo);
                    ts.push(hi);
                    on_ranges.push((lo, hi));
                }
                SegSegIntersection::None => unreachable!("sweep only reports intersections"),
            }
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("finite parameter"));
        ts.dedup();

        for w in ts.windows(2) {
            let (t0, t1) = (w[0].max(0.0), w[1].min(1.0));
            if t1 <= t0 {
                continue;
            }
            let tm = (t0 + t1) * 0.5;
            if on_ranges.iter().any(|&(lo, hi)| lo <= tm && tm <= hi) {
                flags.on_boundary = true;
                continue;
            }
            match other.locate(edge.at(tm)) {
                Location::Inside => flags.in_interior = true,
                Location::Outside => flags.in_exterior = true,
                Location::Boundary => flags.on_boundary = true,
            }
        }
    }
    flags
}

/// Parameter of point `p` (known to lie on `edge`) along the edge,
/// projected on the dominant axis for conditioning.
#[inline]
fn param_on(edge: &Segment, p: Point) -> f64 {
    let dx = edge.b.x - edge.a.x;
    let dy = edge.b.y - edge.a.y;
    let t = if dx.abs() >= dy.abs() {
        if dx == 0.0 {
            0.0
        } else {
            (p.x - edge.a.x) / dx
        }
    } else {
        (p.y - edge.a.y) / dy
    };
    t.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::TopoRelation;
    use stj_geom::{MultiPolygon, Polygon};

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rect(Rect::from_coords(x0, y0, x1, y1))
    }

    fn rel(a: &Polygon, b: &Polygon) -> TopoRelation {
        TopoRelation::most_specific(&relate(a, b))
    }

    #[test]
    fn disjoint_far_apart() {
        let m = relate(&sq(0.0, 0.0, 1.0, 1.0), &sq(5.0, 5.0, 6.0, 6.0));
        assert_eq!(m, De9Im::DISJOINT);
        assert_eq!(m.code(), "FFTFFTTTT");
    }

    #[test]
    fn disjoint_with_overlapping_mbrs() {
        // Two thin triangles whose MBRs overlap but bodies do not.
        let a = Polygon::from_coords(vec![(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], vec![]).unwrap();
        let b = Polygon::from_coords(vec![(10.0, 10.0), (10.0, 2.0), (2.0, 10.0)], vec![]).unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Disjoint);
    }

    #[test]
    fn proper_overlap_is_all_true() {
        let m = relate(&sq(0.0, 0.0, 10.0, 10.0), &sq(5.0, 5.0, 15.0, 15.0));
        assert_eq!(m, De9Im::ALL_TRUE);
        assert_eq!(TopoRelation::most_specific(&m), TopoRelation::Intersects);
    }

    #[test]
    fn strict_containment() {
        let outer = sq(0.0, 0.0, 10.0, 10.0);
        let inner = sq(2.0, 2.0, 4.0, 4.0);
        assert_eq!(relate(&inner, &outer).code(), "TFFTFFTTT");
        assert_eq!(rel(&inner, &outer), TopoRelation::Inside);
        assert_eq!(rel(&outer, &inner), TopoRelation::Contains);
    }

    #[test]
    fn covered_by_shared_edge() {
        // Inner square sharing its bottom edge with the outer square.
        let outer = sq(0.0, 0.0, 10.0, 10.0);
        let inner = sq(2.0, 0.0, 4.0, 4.0);
        assert_eq!(rel(&inner, &outer), TopoRelation::CoveredBy);
        assert_eq!(rel(&outer, &inner), TopoRelation::Covers);
    }

    #[test]
    fn covered_by_corner_touch() {
        let outer = sq(0.0, 0.0, 10.0, 10.0);
        let inner = sq(0.0, 0.0, 3.0, 3.0); // shares the corner and two edge parts
        assert_eq!(rel(&inner, &outer), TopoRelation::CoveredBy);
    }

    #[test]
    fn equal_polygons() {
        let a = sq(1.0, 1.0, 7.0, 5.0);
        let b = sq(1.0, 1.0, 7.0, 5.0);
        assert_eq!(relate(&a, &b).code(), "TFFFTFFFT");
        assert_eq!(rel(&a, &b), TopoRelation::Equals);
    }

    #[test]
    fn equal_up_to_vertex_set() {
        // Same region, but b has an extra collinear vertex on one edge.
        let a = sq(0.0, 0.0, 4.0, 4.0);
        let b = Polygon::from_coords(
            vec![(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)],
            vec![],
        )
        .unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Equals);
    }

    #[test]
    fn meets_edge_contact() {
        let a = sq(0.0, 0.0, 5.0, 5.0);
        let b = sq(5.0, 0.0, 10.0, 5.0); // shares the x=5 edge
        let m = relate(&a, &b);
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
        assert!(m.get(Part::Boundary, Part::Boundary));
        assert!(!m.get(Part::Interior, Part::Interior));
    }

    #[test]
    fn meets_corner_contact() {
        let a = sq(0.0, 0.0, 5.0, 5.0);
        let b = sq(5.0, 5.0, 10.0, 10.0); // single corner point
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
    }

    #[test]
    fn meets_vertex_on_edge() {
        // Triangle tip touching square's edge interior.
        let a = sq(0.0, 0.0, 5.0, 5.0);
        let b = Polygon::from_coords(vec![(5.0, 2.0), (8.0, 0.0), (8.0, 4.0)], vec![]).unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
        assert_eq!(rel(&b, &a), TopoRelation::Meets);
    }

    #[test]
    fn polygon_in_hole_meets() {
        // b exactly fills a's hole: boundaries coincide, interiors are
        // disjoint — the representative-point fallback case.
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let b = sq(3.0, 3.0, 7.0, 7.0);
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
        assert_eq!(rel(&b, &a), TopoRelation::Meets);
    }

    #[test]
    fn polygon_strictly_in_hole_is_disjoint() {
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let b = sq(4.0, 4.0, 6.0, 6.0);
        assert_eq!(rel(&a, &b), TopoRelation::Disjoint);
        assert_eq!(rel(&b, &a), TopoRelation::Disjoint);
    }

    #[test]
    fn hole_filler_larger_than_hole_overlaps() {
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let b = sq(2.0, 2.0, 8.0, 8.0); // covers hole plus some material
        assert_eq!(rel(&a, &b), TopoRelation::Intersects);
    }

    #[test]
    fn containment_with_hole_avoidance() {
        // b inside a, positioned away from a's hole.
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (20.0, 0.0), (20.0, 20.0), (0.0, 20.0)],
            vec![vec![(12.0, 12.0), (16.0, 12.0), (16.0, 16.0), (12.0, 16.0)]],
        )
        .unwrap();
        let b = sq(2.0, 2.0, 6.0, 6.0);
        assert_eq!(rel(&b, &a), TopoRelation::Inside);
        assert_eq!(rel(&a, &b), TopoRelation::Contains);
    }

    #[test]
    fn overlap_through_hole_boundary() {
        // b overlaps a's hole partially and a's material partially.
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]],
        )
        .unwrap();
        let b = sq(5.0, 5.0, 9.0, 9.0);
        assert_eq!(rel(&a, &b), TopoRelation::Intersects);
    }

    #[test]
    fn transpose_consistency() {
        let a = sq(0.0, 0.0, 10.0, 10.0);
        let cases = [
            sq(2.0, 2.0, 4.0, 4.0),
            sq(5.0, 5.0, 15.0, 15.0),
            sq(10.0, 0.0, 20.0, 10.0),
            sq(20.0, 20.0, 30.0, 30.0),
            sq(0.0, 0.0, 10.0, 10.0),
        ];
        for b in &cases {
            assert_eq!(
                relate(&a, b).transposed(),
                relate(b, &a),
                "transpose mismatch for {:?}",
                b.mbr()
            );
        }
    }

    #[test]
    fn multipolygon_component_detection() {
        // One member of the multipolygon is inside `a`, the other far
        // outside — interiors overlap AND each side reaches the other's
        // exterior: all-T without any boundary crossing? Boundaries do not
        // touch here, so BB must be F.
        let a = sq(0.0, 0.0, 10.0, 10.0);
        let mp = MultiPolygon::new(vec![sq(2.0, 2.0, 4.0, 4.0), sq(20.0, 20.0, 24.0, 24.0)]);
        let m = relate(&mp, &a);
        assert!(m.get(Part::Interior, Part::Interior));
        assert!(m.get(Part::Interior, Part::Exterior));
        assert!(m.get(Part::Exterior, Part::Interior));
        assert!(!m.get(Part::Boundary, Part::Boundary));
        assert_eq!(TopoRelation::most_specific(&m), TopoRelation::Intersects);
    }

    #[test]
    fn prepared_reuse_matches_fresh() {
        let a = sq(0.0, 0.0, 10.0, 10.0);
        let pa = Prepared::new(&a);
        for b in [sq(2.0, 2.0, 4.0, 4.0), sq(9.0, 9.0, 12.0, 12.0)] {
            let pb = Prepared::new(&b);
            assert_eq!(relate_prepared(&pa, &pb), relate(&a, &b));
        }
        assert_eq!(pa.num_vertices(), 4);
        assert!(pa.mbr().contains_point(Point::new(5.0, 5.0)));
        assert_eq!(pa.locate(Point::new(5.0, 5.0)), Location::Inside);
    }

    #[test]
    fn sliver_overlap_same_mbr() {
        // Two triangles splitting a square along the diagonal: boundaries
        // share the diagonal, interiors disjoint -> meets, with equal MBRs.
        let a = Polygon::from_coords(vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)], vec![]).unwrap();
        let b = Polygon::from_coords(vec![(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], vec![]).unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
    }
}
