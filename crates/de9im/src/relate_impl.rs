//! DE-9IM matrix computation for areal geometries.
//!
//! This is the refinement oracle of the pipeline — the expensive step the
//! intermediate raster filters exist to avoid. The algorithm (see
//! DESIGN.md §2 for the full argument):
//!
//! 1. Find all boundary–boundary segment intersections with a plane sweep
//!    over segment MBRs.
//! 2. If any **proper crossing** exists, the matrix is all-`T`: at a
//!    transversal crossing each boundary locally passes from the other
//!    geometry's interior to its exterior, which populates every cell.
//! 3. Otherwise **node** both boundaries at the touch points and
//!    collinear-overlap endpoints. Every resulting sub-edge lies entirely
//!    in one part (interior/boundary/exterior) of the other geometry, so
//!    classifying its midpoint fills the boundary rows/columns exactly.
//! 4. The three interior/exterior cells (`II`, `IE`, `EI`) follow from
//!    the sub-edge classes plus representative interior points — one per
//!    connected interior component — which close the remaining
//!    shared-boundary cases (e.g. a polygon exactly filling another's
//!    hole).
//!
//! Inputs are assumed OGC-valid (simple rings, holes inside shells,
//! touching allowed, crossing not). Validity matches the datasets the
//! paper evaluates on; invalid inputs degrade gracefully to *some*
//! matrix but without the guarantees tested here.
//!
//! ## Scratch arenas
//!
//! A single `relate` call needs roughly a dozen transient buffers —
//! noding output, sweep event lists, the intersection hit list, sub-edge
//! parameter vectors. Allocating them per call is what made the join's
//! refine stage allocator-bound (~5.6M allocations on the OBE self-join;
//! see DESIGN.md §10). [`RelateScratch`] owns all of them; callers on the
//! hot path hold one scratch per worker and call [`relate_with`], which
//! only *clears* the buffers between pairs, so steady-state refinement
//! performs no allocations at all. [`relate`] stays as the allocating
//! one-shot wrapper.

use crate::matrix::{De9Im, Part};
use stj_geom::locator::EdgeSetLocator;
use stj_geom::multipolygon::Areal;
use stj_geom::polygon::Location;
use stj_geom::seg_intersect::SegSegIntersection;
use stj_geom::sweep::{boundary_pairs_into, EdgePairHit, SweepScratch};
use stj_geom::{InteriorScratch, Point, Rect, Segment};

/// A geometry preprocessed for repeated `relate` calls: boundary edges,
/// strip-indexed point locator and representative interior points.
///
/// The edge list lives inside the locator; [`Prepared::prepare`] rebuilds
/// everything in place so one `Prepared` can be recycled across
/// geometries without allocating.
pub struct Prepared {
    locator: EdgeSetLocator,
    interior_points: Vec<Point>,
    mbr: Rect,
    num_vertices: usize,
}

impl Prepared {
    /// Preprocesses `g` (cost `O(n log n)` in the number of vertices).
    pub fn new<G: Areal>(g: &G) -> Prepared {
        let mut p = Prepared::empty();
        p.prepare(g, &mut InteriorScratch::default());
        p
    }

    /// An empty shell holding no geometry; pair with
    /// [`prepare`](Self::prepare) to populate it in place.
    pub fn empty() -> Prepared {
        Prepared {
            locator: EdgeSetLocator::empty(),
            interior_points: Vec::new(),
            mbr: Rect::empty(),
            num_vertices: 0,
        }
    }

    /// Re-targets this `Prepared` at `g`, rebuilding edges, locator index
    /// and interior points inside the retained buffers.
    pub fn prepare<G: Areal + ?Sized>(&mut self, g: &G, interior: &mut InteriorScratch) {
        let _site = stj_obs::alloc::enter(stj_obs::AllocSite::Noding);
        self.locator.rebuild(|out| g.collect_edges(out));
        self.interior_points.clear();
        g.collect_interior_points(interior, &mut self.interior_points);
        self.mbr = g.mbr();
        self.num_vertices = g.num_vertices();
    }

    /// The boundary edges, in collection order.
    #[inline]
    pub fn edges(&self) -> &[Segment] {
        self.locator.edges()
    }

    /// The geometry's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// Total vertex count (the paper's complexity measure).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Exact point location against the prepared geometry.
    #[inline]
    pub fn locate(&self, p: Point) -> Location {
        self.locator.locate(p)
    }
}

/// Reusable working memory for [`relate_with`]: two recyclable
/// [`Prepared`] slots plus every transient buffer the sweep and sub-edge
/// classification need. One per worker thread; buffers are cleared (never
/// shrunk) between calls, so a warmed scratch relates without allocating.
#[derive(Default)]
pub struct RelateScratch {
    pa: Prepared,
    pb: Prepared,
    sweep: SweepScratch,
    hits: Vec<EdgePairHit>,
    classify: ClassifyScratch,
    interior: InteriorScratch,
}

impl Default for Prepared {
    fn default() -> Prepared {
        Prepared::empty()
    }
}

/// Computes the boolean DE-9IM matrix of `(r, s)`.
///
/// Convenience wrapper that prepares both geometries with one-shot
/// buffers; use [`relate_with`] on hot paths and [`relate_prepared`] when
/// a geometry participates in many pairs.
pub fn relate<A: Areal, B: Areal>(r: &A, s: &B) -> De9Im {
    relate_with(r, s, &mut RelateScratch::default())
}

/// Computes the boolean DE-9IM matrix of `(r, s)` using caller-owned
/// scratch memory. Steady-state allocation-free: after a few warm-up
/// calls the scratch's buffers have grown to working size and are only
/// cleared between pairs.
pub fn relate_with<A: Areal, B: Areal>(r: &A, s: &B, scratch: &mut RelateScratch) -> De9Im {
    let RelateScratch {
        pa,
        pb,
        sweep,
        hits,
        classify,
        interior,
    } = scratch;
    pa.prepare(r, interior);
    pb.prepare(s, interior);
    relate_prepared_into(pa, pb, sweep, hits, classify)
}

/// Computes the boolean DE-9IM matrix of `(r, s)` from prepared
/// geometries. Rows index parts of `r`, columns parts of `s`.
pub fn relate_prepared(r: &Prepared, s: &Prepared) -> De9Im {
    relate_prepared_into(
        r,
        s,
        &mut SweepScratch::default(),
        &mut Vec::new(),
        &mut ClassifyScratch::default(),
    )
}

fn relate_prepared_into(
    r: &Prepared,
    s: &Prepared,
    sweep: &mut SweepScratch,
    hits: &mut Vec<EdgePairHit>,
    classify: &mut ClassifyScratch,
) -> De9Im {
    if !r.mbr.intersects(&s.mbr) {
        return De9Im::DISJOINT;
    }

    boundary_pairs_into(
        r.edges(),
        s.edges(),
        /*stop_on_proper=*/ true,
        sweep,
        hits,
    );
    if matches!(
        hits.last(),
        Some(EdgePairHit {
            kind: SegSegIntersection::Proper(_),
            ..
        })
    ) {
        // A transversal boundary crossing populates all nine cells.
        return De9Im::ALL_TRUE;
    }

    // Classify r's boundary sub-edges against s and vice versa.
    let r_flags = classify_boundary(r.edges(), hits, HitSide::First, s, classify);
    let s_flags = classify_boundary(s.edges(), hits, HitSide::Second, r, classify);

    let boundaries_touch = !hits.is_empty();
    debug_assert!(
        !(r_flags.on_boundary ^ s_flags.on_boundary),
        "collinear overlap must be seen from both sides"
    );

    let mut m = De9Im::EMPTY;
    m.set(Part::Boundary, Part::Interior, r_flags.in_interior);
    m.set(Part::Boundary, Part::Exterior, r_flags.in_exterior);
    m.set(Part::Interior, Part::Boundary, s_flags.in_interior);
    m.set(Part::Exterior, Part::Boundary, s_flags.in_exterior);
    m.set(Part::Boundary, Part::Boundary, boundaries_touch);
    m.set(Part::Exterior, Part::Exterior, true);

    // II: a boundary sub-edge of either geometry inside the other implies
    // interior overlap (open neighborhoods); otherwise only whole-interior
    // coincidences remain, closed by the representative points.
    let mut rep_r_inside = false;
    let mut rep_r_outside = false;
    for &p in &r.interior_points {
        match s.locate(p) {
            Location::Inside => rep_r_inside = true,
            Location::Outside => rep_r_outside = true,
            Location::Boundary => {}
        }
    }
    let mut rep_s_inside = false;
    let mut rep_s_outside = false;
    for &p in &s.interior_points {
        match r.locate(p) {
            Location::Inside => rep_s_inside = true,
            Location::Outside => rep_s_outside = true,
            Location::Boundary => {}
        }
    }
    let ii = r_flags.in_interior || s_flags.in_interior || rep_r_inside || rep_s_inside;
    m.set(Part::Interior, Part::Interior, ii);

    // IE: r's interior reaches s's exterior.
    let ie = r_flags.in_exterior || s_flags.in_interior || rep_r_outside;
    m.set(Part::Interior, Part::Exterior, ie);

    // EI: s's interior reaches r's exterior.
    let ei = s_flags.in_exterior || r_flags.in_interior || rep_s_outside;
    m.set(Part::Exterior, Part::Interior, ei);

    m
}

/// Which side of an [`EdgePairHit`] an edge index refers to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HitSide {
    First,
    Second,
}

/// Aggregate classification of one geometry's boundary against the other
/// geometry: does any sub-edge lie in its interior / exterior / on its
/// boundary?
#[derive(Clone, Copy, Debug, Default)]
struct BoundaryFlags {
    in_interior: bool,
    in_exterior: bool,
    on_boundary: bool,
}

/// Reusable buffers for [`classify_boundary`]: a CSR per-edge grouping of
/// the hit list plus the per-edge parameter vectors.
#[derive(Debug, Default)]
struct ClassifyScratch {
    /// CSR offsets: edge `i`'s hits are `hit_idx[offs[i]..offs[i + 1]]`.
    offs: Vec<u32>,
    /// Indices into the hit list, grouped by our-side edge index.
    hit_idx: Vec<u32>,
    /// Split parameters of the edge under classification.
    ts: Vec<f64>,
    /// Collinear-overlap parameter ranges of that edge.
    on_ranges: Vec<(f64, f64)>,
}

/// Splits every edge at its recorded intersection points and classifies
/// each sub-edge midpoint against `other`. Sub-edges falling inside a
/// collinear-overlap range are classified as on-boundary directly (their
/// midpoints are only floating-point-close to the other boundary).
fn classify_boundary(
    edges: &[Segment],
    hits: &[EdgePairHit],
    side: HitSide,
    other: &Prepared,
    scratch: &mut ClassifyScratch,
) -> BoundaryFlags {
    let _site = stj_obs::alloc::enter(stj_obs::AllocSite::SubEdge);
    let our_edge = |h: &EdgePairHit| match side {
        HitSide::First => h.ia,
        HitSide::Second => h.ib,
    };

    // Group hits by edge index on our side, CSR-style in the retained
    // buffers: count per edge, prefix-sum to start offsets, scatter with
    // the offsets as cursors, shift the cursors back to starts.
    let offs = &mut scratch.offs;
    offs.clear();
    offs.resize(edges.len() + 1, 0);
    for h in hits {
        offs[our_edge(h) + 1] += 1;
    }
    for i in 0..edges.len() {
        offs[i + 1] += offs[i];
    }
    scratch.hit_idx.clear();
    scratch.hit_idx.resize(hits.len(), 0);
    // Scattering in hit order keeps each edge's hits in hit-list order,
    // matching the old per-edge push construction.
    for (k, h) in hits.iter().enumerate() {
        let e = our_edge(h);
        scratch.hit_idx[offs[e] as usize] = k as u32;
        offs[e] += 1;
    }
    for i in (1..=edges.len()).rev() {
        offs[i] = offs[i - 1];
    }
    if !offs.is_empty() {
        offs[0] = 0;
    }

    let mut flags = BoundaryFlags::default();
    let ts = &mut scratch.ts;
    let on_ranges = &mut scratch.on_ranges;

    for (i, edge) in edges.iter().enumerate() {
        if flags.in_interior && flags.in_exterior && flags.on_boundary {
            break; // all information gathered
        }
        ts.clear();
        on_ranges.clear();
        ts.push(0.0);
        ts.push(1.0);
        let (lo, hi) = (offs[i] as usize, offs[i + 1] as usize);
        for &k in &scratch.hit_idx[lo..hi] {
            match hits[k as usize].kind {
                SegSegIntersection::Proper(p) | SegSegIntersection::Touch(p) => {
                    ts.push(param_on(edge, p));
                }
                SegSegIntersection::CollinearOverlap(p, q) => {
                    let (tp, tq) = (param_on(edge, p), param_on(edge, q));
                    let (lo, hi) = if tp <= tq { (tp, tq) } else { (tq, tp) };
                    ts.push(lo);
                    ts.push(hi);
                    on_ranges.push((lo, hi));
                }
                SegSegIntersection::None => unreachable!("sweep only reports intersections"),
            }
        }
        ts.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite parameter"));
        ts.dedup();

        for w in ts.windows(2) {
            let (t0, t1) = (w[0].max(0.0), w[1].min(1.0));
            if t1 <= t0 {
                continue;
            }
            let tm = (t0 + t1) * 0.5;
            if on_ranges.iter().any(|&(lo, hi)| lo <= tm && tm <= hi) {
                flags.on_boundary = true;
                continue;
            }
            match other.locate(edge.at(tm)) {
                Location::Inside => flags.in_interior = true,
                Location::Outside => flags.in_exterior = true,
                Location::Boundary => flags.on_boundary = true,
            }
        }
    }
    flags
}

/// Parameter of point `p` (known to lie on `edge`) along the edge,
/// projected on the dominant axis for conditioning.
#[inline]
fn param_on(edge: &Segment, p: Point) -> f64 {
    let dx = edge.b.x - edge.a.x;
    let dy = edge.b.y - edge.a.y;
    let t = if dx.abs() >= dy.abs() {
        if dx == 0.0 {
            0.0
        } else {
            (p.x - edge.a.x) / dx
        }
    } else {
        (p.y - edge.a.y) / dy
    };
    t.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::TopoRelation;
    use stj_geom::{MultiPolygon, Polygon};

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rect(Rect::from_coords(x0, y0, x1, y1))
    }

    fn rel(a: &Polygon, b: &Polygon) -> TopoRelation {
        TopoRelation::most_specific(&relate(a, b))
    }

    #[test]
    fn disjoint_far_apart() {
        let m = relate(&sq(0.0, 0.0, 1.0, 1.0), &sq(5.0, 5.0, 6.0, 6.0));
        assert_eq!(m, De9Im::DISJOINT);
        assert_eq!(m.code(), "FFTFFTTTT");
    }

    #[test]
    fn disjoint_with_overlapping_mbrs() {
        // Two thin triangles whose MBRs overlap but bodies do not.
        let a = Polygon::from_coords(vec![(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], vec![]).unwrap();
        let b = Polygon::from_coords(vec![(10.0, 10.0), (10.0, 2.0), (2.0, 10.0)], vec![]).unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Disjoint);
    }

    #[test]
    fn proper_overlap_is_all_true() {
        let m = relate(&sq(0.0, 0.0, 10.0, 10.0), &sq(5.0, 5.0, 15.0, 15.0));
        assert_eq!(m, De9Im::ALL_TRUE);
        assert_eq!(TopoRelation::most_specific(&m), TopoRelation::Intersects);
    }

    #[test]
    fn strict_containment() {
        let outer = sq(0.0, 0.0, 10.0, 10.0);
        let inner = sq(2.0, 2.0, 4.0, 4.0);
        assert_eq!(relate(&inner, &outer).code(), "TFFTFFTTT");
        assert_eq!(rel(&inner, &outer), TopoRelation::Inside);
        assert_eq!(rel(&outer, &inner), TopoRelation::Contains);
    }

    #[test]
    fn covered_by_shared_edge() {
        // Inner square sharing its bottom edge with the outer square.
        let outer = sq(0.0, 0.0, 10.0, 10.0);
        let inner = sq(2.0, 0.0, 4.0, 4.0);
        assert_eq!(rel(&inner, &outer), TopoRelation::CoveredBy);
        assert_eq!(rel(&outer, &inner), TopoRelation::Covers);
    }

    #[test]
    fn covered_by_corner_touch() {
        let outer = sq(0.0, 0.0, 10.0, 10.0);
        let inner = sq(0.0, 0.0, 3.0, 3.0); // shares the corner and two edge parts
        assert_eq!(rel(&inner, &outer), TopoRelation::CoveredBy);
    }

    #[test]
    fn equal_polygons() {
        let a = sq(1.0, 1.0, 7.0, 5.0);
        let b = sq(1.0, 1.0, 7.0, 5.0);
        assert_eq!(relate(&a, &b).code(), "TFFFTFFFT");
        assert_eq!(rel(&a, &b), TopoRelation::Equals);
    }

    #[test]
    fn equal_up_to_vertex_set() {
        // Same region, but b has an extra collinear vertex on one edge.
        let a = sq(0.0, 0.0, 4.0, 4.0);
        let b = Polygon::from_coords(
            vec![(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)],
            vec![],
        )
        .unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Equals);
    }

    #[test]
    fn meets_edge_contact() {
        let a = sq(0.0, 0.0, 5.0, 5.0);
        let b = sq(5.0, 0.0, 10.0, 5.0); // shares the x=5 edge
        let m = relate(&a, &b);
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
        assert!(m.get(Part::Boundary, Part::Boundary));
        assert!(!m.get(Part::Interior, Part::Interior));
    }

    #[test]
    fn meets_corner_contact() {
        let a = sq(0.0, 0.0, 5.0, 5.0);
        let b = sq(5.0, 5.0, 10.0, 10.0); // single corner point
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
    }

    #[test]
    fn meets_vertex_on_edge() {
        // Triangle tip touching square's edge interior.
        let a = sq(0.0, 0.0, 5.0, 5.0);
        let b = Polygon::from_coords(vec![(5.0, 2.0), (8.0, 0.0), (8.0, 4.0)], vec![]).unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
        assert_eq!(rel(&b, &a), TopoRelation::Meets);
    }

    #[test]
    fn polygon_in_hole_meets() {
        // b exactly fills a's hole: boundaries coincide, interiors are
        // disjoint — the representative-point fallback case.
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let b = sq(3.0, 3.0, 7.0, 7.0);
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
        assert_eq!(rel(&b, &a), TopoRelation::Meets);
    }

    #[test]
    fn polygon_strictly_in_hole_is_disjoint() {
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let b = sq(4.0, 4.0, 6.0, 6.0);
        assert_eq!(rel(&a, &b), TopoRelation::Disjoint);
        assert_eq!(rel(&b, &a), TopoRelation::Disjoint);
    }

    #[test]
    fn hole_filler_larger_than_hole_overlaps() {
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let b = sq(2.0, 2.0, 8.0, 8.0); // covers hole plus some material
        assert_eq!(rel(&a, &b), TopoRelation::Intersects);
    }

    #[test]
    fn containment_with_hole_avoidance() {
        // b inside a, positioned away from a's hole.
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (20.0, 0.0), (20.0, 20.0), (0.0, 20.0)],
            vec![vec![(12.0, 12.0), (16.0, 12.0), (16.0, 16.0), (12.0, 16.0)]],
        )
        .unwrap();
        let b = sq(2.0, 2.0, 6.0, 6.0);
        assert_eq!(rel(&b, &a), TopoRelation::Inside);
        assert_eq!(rel(&a, &b), TopoRelation::Contains);
    }

    #[test]
    fn overlap_through_hole_boundary() {
        // b overlaps a's hole partially and a's material partially.
        let a = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]],
        )
        .unwrap();
        let b = sq(5.0, 5.0, 9.0, 9.0);
        assert_eq!(rel(&a, &b), TopoRelation::Intersects);
    }

    #[test]
    fn transpose_consistency() {
        let a = sq(0.0, 0.0, 10.0, 10.0);
        let cases = [
            sq(2.0, 2.0, 4.0, 4.0),
            sq(5.0, 5.0, 15.0, 15.0),
            sq(10.0, 0.0, 20.0, 10.0),
            sq(20.0, 20.0, 30.0, 30.0),
            sq(0.0, 0.0, 10.0, 10.0),
        ];
        for b in &cases {
            assert_eq!(
                relate(&a, b).transposed(),
                relate(b, &a),
                "transpose mismatch for {:?}",
                b.mbr()
            );
        }
    }

    #[test]
    fn multipolygon_component_detection() {
        // One member of the multipolygon is inside `a`, the other far
        // outside — interiors overlap AND each side reaches the other's
        // exterior: all-T without any boundary crossing? Boundaries do not
        // touch here, so BB must be F.
        let a = sq(0.0, 0.0, 10.0, 10.0);
        let mp = MultiPolygon::new(vec![sq(2.0, 2.0, 4.0, 4.0), sq(20.0, 20.0, 24.0, 24.0)]);
        let m = relate(&mp, &a);
        assert!(m.get(Part::Interior, Part::Interior));
        assert!(m.get(Part::Interior, Part::Exterior));
        assert!(m.get(Part::Exterior, Part::Interior));
        assert!(!m.get(Part::Boundary, Part::Boundary));
        assert_eq!(TopoRelation::most_specific(&m), TopoRelation::Intersects);
    }

    #[test]
    fn prepared_reuse_matches_fresh() {
        let a = sq(0.0, 0.0, 10.0, 10.0);
        let pa = Prepared::new(&a);
        for b in [sq(2.0, 2.0, 4.0, 4.0), sq(9.0, 9.0, 12.0, 12.0)] {
            let pb = Prepared::new(&b);
            assert_eq!(relate_prepared(&pa, &pb), relate(&a, &b));
        }
        assert_eq!(pa.num_vertices(), 4);
        assert!(pa.mbr().contains_point(Point::new(5.0, 5.0)));
        assert_eq!(pa.locate(Point::new(5.0, 5.0)), Location::Inside);
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        // One scratch cycled through pairs of very different shapes and
        // sizes must reproduce the one-shot wrapper's matrix exactly.
        let holed = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]],
        )
        .unwrap();
        let cases = [
            (sq(0.0, 0.0, 10.0, 10.0), sq(5.0, 5.0, 15.0, 15.0)),
            (sq(0.0, 0.0, 1.0, 1.0), sq(5.0, 5.0, 6.0, 6.0)),
            (holed.clone(), sq(3.0, 3.0, 7.0, 7.0)),
            (sq(2.0, 0.0, 4.0, 4.0), sq(0.0, 0.0, 10.0, 10.0)),
            (holed, sq(2.0, 2.0, 8.0, 8.0)),
        ];
        let mut scratch = RelateScratch::default();
        for (a, b) in &cases {
            assert_eq!(relate_with(a, b, &mut scratch), relate(a, b));
            assert_eq!(relate_with(b, a, &mut scratch), relate(b, a));
        }
    }

    #[test]
    fn sliver_overlap_same_mbr() {
        // Two triangles splitting a square along the diagonal: boundaries
        // share the diagonal, interiors disjoint -> meets, with equal MBRs.
        let a = Polygon::from_coords(vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)], vec![]).unwrap();
        let b = Polygon::from_coords(vec![(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], vec![]).unwrap();
        assert_eq!(rel(&a, &b), TopoRelation::Meets);
    }
}
