//! `stj-de9im`: the Dimensionally Extended 9-Intersection Model engine.
//!
//! This crate plays the role boost::geometry's `relation()` plays in the
//! paper: the *refinement oracle* that, given two areal geometries whose
//! MBRs intersect, computes the full DE-9IM intersection matrix and from
//! it the most specific topological relation.
//!
//! Contents:
//!
//! - [`De9Im`]: the boolean 3×3 intersection matrix with its 9-character
//!   string code (`"FFTFFTTTT"`-style, Sec 2.1 of the paper);
//! - [`Mask`]: the `T`/`F`/`*` mask language and [`mask::table1`], the
//!   paper's Table 1 relation masks;
//! - [`TopoRelation`]: the eight topological relations of Figure 1(a)
//!   with their generalization hierarchy (Figure 2);
//! - [`relate`]: the matrix computation for polygons/multi-polygons via
//!   boundary noding and exact sub-edge classification.

pub mod mask;
pub mod matrix;
pub mod relate_impl;
pub mod relation;

pub use mask::Mask;
pub use matrix::{De9Im, Part};
pub use relate_impl::{relate, relate_prepared, relate_with, Prepared, RelateScratch};
pub use relation::TopoRelation;
