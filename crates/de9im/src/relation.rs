//! The eight topological relations and their generalization hierarchy.

use crate::mask;
use crate::matrix::{De9Im, Part};
use std::fmt;

/// The eight topological relations of Figure 1(a).
///
/// All relations are between a first geometry `r` and a second geometry
/// `s`; the asymmetric ones come in converse pairs
/// (`Inside`/`Contains`, `CoveredBy`/`Covers`).
///
/// Following the paper's Figure 1(a)/Figure 2 semantics:
///
/// - `Inside`/`Contains` denote containment **without** boundary contact;
/// - `CoveredBy`/`Covers` denote containment **with** boundary contact
///   (their Table 1 masks are generalizations of the inside/contains
///   masks, which is why *most specific* resolution checks inside first
///   and additionally requires an empty boundary–boundary intersection);
/// - `Intersects` is the generic "interiors overlap both ways" relation —
///   the most general non-disjoint answer;
/// - `Meets` is boundary-only contact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TopoRelation {
    /// The geometries share no point.
    Disjoint,
    /// The geometries share at least one point (the most general
    /// non-disjoint relation).
    Intersects,
    /// Boundaries touch but interiors are disjoint.
    Meets,
    /// The geometries are point-set equal.
    Equals,
    /// `r` lies strictly in the interior of `s` (no boundary contact).
    Inside,
    /// `s` lies strictly in the interior of `r` (converse of `Inside`).
    Contains,
    /// `r` lies within `s`, with boundary contact.
    CoveredBy,
    /// `s` lies within `r`, with boundary contact (converse of
    /// `CoveredBy`).
    Covers,
}

impl TopoRelation {
    /// All eight relations, in *most-specific-first* verification order.
    ///
    /// Refinement (Sec 3.2) compares a computed DE-9IM matrix against
    /// relation masks "in a specific-to-general order"; this is that
    /// order. `Equals` precedes the containment family (its mask implies
    /// both `CoveredBy` and `Covers`), strict containment precedes the
    /// covers family, `Meets` precedes generic `Intersects`, and
    /// `Disjoint` closes the list.
    pub const SPECIFIC_TO_GENERAL: [TopoRelation; 8] = [
        TopoRelation::Equals,
        TopoRelation::Inside,
        TopoRelation::Contains,
        TopoRelation::CoveredBy,
        TopoRelation::Covers,
        TopoRelation::Meets,
        TopoRelation::Intersects,
        TopoRelation::Disjoint,
    ];

    /// The converse relation: `rel(r, s)` ⇔ `rel.converse()(s, r)`.
    pub fn converse(self) -> TopoRelation {
        match self {
            TopoRelation::Inside => TopoRelation::Contains,
            TopoRelation::Contains => TopoRelation::Inside,
            TopoRelation::CoveredBy => TopoRelation::Covers,
            TopoRelation::Covers => TopoRelation::CoveredBy,
            other => other,
        }
    }

    /// Whether a pair in relation `self` necessarily also satisfies
    /// `general` — the Venn containments of Figure 2.
    ///
    /// Every relation implies itself; `Equals` implies both covered
    /// variants; strict containment implies the corresponding covers
    /// variant; everything except `Disjoint` implies `Intersects`.
    pub fn implies(self, general: TopoRelation) -> bool {
        use TopoRelation::*;
        if self == general {
            return true;
        }
        matches!(
            (self, general),
            (Equals, CoveredBy | Covers | Intersects)
                | (Inside, CoveredBy | Intersects)
                | (Contains, Covers | Intersects)
                | (CoveredBy | Covers | Meets, Intersects)
        )
    }

    /// Whether the relation holds for a computed DE-9IM matrix, per the
    /// Figure 1(a) semantics (Table 1 masks, with the strict/touching
    /// containment split decided by the boundary–boundary cell).
    pub fn holds(self, m: &De9Im) -> bool {
        use TopoRelation::*;
        let bb = m.get(Part::Boundary, Part::Boundary);
        match self {
            Inside => mask::matrix_satisfies(m, Inside) && !bb,
            Contains => mask::matrix_satisfies(m, Contains) && !bb,
            // `Equals` would also pass the CoveredBy/Covers masks; keep
            // the covered variants as strict supersets of equals but
            // distinct from strict containment.
            CoveredBy => mask::matrix_satisfies(m, CoveredBy),
            Covers => mask::matrix_satisfies(m, Covers),
            other => mask::matrix_satisfies(m, other),
        }
    }

    /// The most specific relation satisfied by matrix `m`.
    ///
    /// Walks [`TopoRelation::SPECIFIC_TO_GENERAL`] and returns the first
    /// hit. Every matrix matches at least `Intersects` or `Disjoint`.
    pub fn most_specific(m: &De9Im) -> TopoRelation {
        for rel in TopoRelation::SPECIFIC_TO_GENERAL {
            if rel.holds(m) {
                return rel;
            }
        }
        unreachable!("a DE-9IM matrix is always intersects or disjoint")
    }
}

impl TopoRelation {
    /// Parses a relation name as accepted by the CLI and the serving
    /// API: canonical names plus the common aliases (`touches`,
    /// `within`, `covered_by` / `covered-by` / `coveredby`). Matching is
    /// case-insensitive. Returns `None` for unknown names.
    pub fn parse(name: &str) -> Option<TopoRelation> {
        Some(match name.to_ascii_lowercase().as_str() {
            "disjoint" => TopoRelation::Disjoint,
            "intersects" => TopoRelation::Intersects,
            "meets" | "touches" => TopoRelation::Meets,
            "equals" => TopoRelation::Equals,
            "inside" | "within" => TopoRelation::Inside,
            "contains" => TopoRelation::Contains,
            "coveredby" | "covered_by" | "covered-by" | "covered by" => TopoRelation::CoveredBy,
            "covers" => TopoRelation::Covers,
            _ => return None,
        })
    }
}

impl fmt::Display for TopoRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopoRelation::Disjoint => "disjoint",
            TopoRelation::Intersects => "intersects",
            TopoRelation::Meets => "meets",
            TopoRelation::Equals => "equals",
            TopoRelation::Inside => "inside",
            TopoRelation::Contains => "contains",
            TopoRelation::CoveredBy => "covered by",
            TopoRelation::Covers => "covers",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TopoRelation::*;

    #[test]
    fn converse_is_involutive() {
        for rel in TopoRelation::SPECIFIC_TO_GENERAL {
            assert_eq!(rel.converse().converse(), rel);
        }
        assert_eq!(Inside.converse(), Contains);
        assert_eq!(Covers.converse(), CoveredBy);
        assert_eq!(Meets.converse(), Meets);
        assert_eq!(Equals.converse(), Equals);
    }

    #[test]
    fn implication_hierarchy() {
        assert!(Equals.implies(CoveredBy));
        assert!(Equals.implies(Covers));
        assert!(Equals.implies(Intersects));
        assert!(Inside.implies(CoveredBy));
        assert!(!Inside.implies(Covers));
        assert!(Contains.implies(Covers));
        assert!(Meets.implies(Intersects));
        assert!(!Disjoint.implies(Intersects));
        assert!(!Intersects.implies(Meets));
        for rel in TopoRelation::SPECIFIC_TO_GENERAL {
            assert!(rel.implies(rel));
        }
    }

    #[test]
    fn most_specific_on_canonical_matrices() {
        assert_eq!(TopoRelation::most_specific(&De9Im::DISJOINT), Disjoint);
        assert_eq!(TopoRelation::most_specific(&De9Im::ALL_TRUE), Intersects);
        // Strict containment (no boundary contact).
        assert_eq!(
            TopoRelation::most_specific(&De9Im::from_code("TFFTFFTTT")),
            Inside
        );
        assert_eq!(
            TopoRelation::most_specific(&De9Im::from_code("TTTFFTFFT")),
            Contains
        );
        // Containment with boundary contact.
        assert_eq!(
            TopoRelation::most_specific(&De9Im::from_code("TFFTTFTTT")),
            CoveredBy
        );
        assert_eq!(
            TopoRelation::most_specific(&De9Im::from_code("TTTFTTFFT")),
            Covers
        );
        // Equal geometries.
        assert_eq!(
            TopoRelation::most_specific(&De9Im::from_code("TFFFTFFFT")),
            Equals
        );
        // Boundary-only contact.
        assert_eq!(
            TopoRelation::most_specific(&De9Im::from_code("FFTFTTTTT")),
            Meets
        );
    }

    #[test]
    fn most_specific_implies_all_satisfied_generalizations() {
        // For each canonical matrix, the most specific relation must imply
        // every other relation that holds for the matrix.
        for code in [
            "FFTFFTTTT",
            "TTTTTTTTT",
            "TFFTFFTTT",
            "TTTFFTFFT",
            "TFFTTFTTT",
            "TTTFTTFFT",
            "TFFFTFFFT",
            "FFTFTTTTT",
        ] {
            let m = De9Im::from_code(code);
            let best = TopoRelation::most_specific(&m);
            for rel in TopoRelation::SPECIFIC_TO_GENERAL {
                if rel.holds(&m) {
                    assert!(
                        best.implies(rel) || best == rel,
                        "{code}: most specific {best:?} does not imply satisfied {rel:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CoveredBy.to_string(), "covered by");
        assert_eq!(Intersects.to_string(), "intersects");
    }

    #[test]
    fn parse_roundtrips_display_and_aliases() {
        for rel in TopoRelation::SPECIFIC_TO_GENERAL {
            assert_eq!(TopoRelation::parse(&rel.to_string()), Some(rel));
        }
        assert_eq!(TopoRelation::parse("disjoint"), Some(Disjoint));
        assert_eq!(TopoRelation::parse("TOUCHES"), Some(Meets));
        assert_eq!(TopoRelation::parse("within"), Some(Inside));
        assert_eq!(TopoRelation::parse("covered_by"), Some(CoveredBy));
        assert_eq!(TopoRelation::parse("covered-by"), Some(CoveredBy));
        assert_eq!(TopoRelation::parse("overlaps"), None);
        assert_eq!(TopoRelation::parse(""), None);
    }
}
