//! DE-9IM masks (Table 1 of the paper).
//!
//! A mask is a 9-character pattern over `{T, F, *}`; a boolean DE-9IM
//! matrix *matches* the mask when every `T` position is `T` and every `F`
//! position is `F` (`*` matches either). A topological relation holds iff
//! the matrix matches at least one of the relation's masks.

use crate::matrix::De9Im;
use crate::relation::TopoRelation;

/// A single DE-9IM mask: for each of the nine cells, the bit in `require`
/// is consulted only when the corresponding bit in `care` is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mask {
    care: u16,
    require: u16,
}

impl Mask {
    /// Parses a mask from its 9-character pattern.
    ///
    /// # Panics
    /// Panics on length ≠ 9 or characters outside `{T, F, *}`.
    pub const fn parse(pattern: &str) -> Mask {
        let bytes = pattern.as_bytes();
        assert!(bytes.len() == 9, "mask must have 9 characters");
        let mut care = 0u16;
        let mut require = 0u16;
        let mut i = 0;
        while i < 9 {
            match bytes[i] {
                b'T' | b't' => {
                    care |= 1 << i;
                    require |= 1 << i;
                }
                b'F' | b'f' => care |= 1 << i,
                b'*' => {}
                _ => panic!("invalid mask character"),
            }
            i += 1;
        }
        Mask { care, require }
    }

    /// Whether `m` matches this mask.
    #[inline]
    pub fn matches(&self, m: &De9Im) -> bool {
        m.bits() & self.care == self.require
    }

    /// Renders the pattern back to its 9-character form.
    pub fn pattern(&self) -> String {
        (0..9)
            .map(|i| {
                if self.care & (1 << i) == 0 {
                    '*'
                } else if self.require & (1 << i) != 0 {
                    'T'
                } else {
                    'F'
                }
            })
            .collect()
    }
}

/// The paper's Table 1: masks per topological relation.
///
/// A pair `(r, s)` satisfies the relation iff its DE-9IM matrix matches at
/// least one listed mask.
pub mod table1 {
    use super::Mask;

    /// `disjoint`: `FF*FF****`.
    pub const DISJOINT: &[Mask] = &[Mask::parse("FF*FF****")];

    /// `intersects`: any of the four single-cell masks.
    pub const INTERSECTS: &[Mask] = &[
        Mask::parse("T********"),
        Mask::parse("*T*******"),
        Mask::parse("***T*****"),
        Mask::parse("****T****"),
    ];

    /// `covers`: any part of `s` intersected, nothing of `s` outside `r`.
    pub const COVERS: &[Mask] = &[
        Mask::parse("T*****FF*"),
        Mask::parse("*T****FF*"),
        Mask::parse("***T**FF*"),
        Mask::parse("****T*FF*"),
    ];

    /// `covered by`: the converse of `covers`.
    pub const COVERED_BY: &[Mask] = &[
        Mask::parse("T*F**F***"),
        Mask::parse("*TF**F***"),
        Mask::parse("**FT*F***"),
        Mask::parse("**F*TF***"),
    ];

    /// `equals`: `T*F**FFF*`.
    pub const EQUALS: &[Mask] = &[Mask::parse("T*F**FFF*")];

    /// `contains`: `T*****FF*`.
    pub const CONTAINS: &[Mask] = &[Mask::parse("T*****FF*")];

    /// `inside` (within): `T*F**F***`.
    pub const INSIDE: &[Mask] = &[Mask::parse("T*F**F***")];

    /// `meets` (touches): boundary contact without interior overlap.
    pub const MEETS: &[Mask] = &[
        Mask::parse("FT*******"),
        Mask::parse("F**T*****"),
        Mask::parse("F***T****"),
    ];
}

/// Returns Table 1's masks for `rel`.
pub fn masks_for(rel: TopoRelation) -> &'static [Mask] {
    match rel {
        TopoRelation::Disjoint => table1::DISJOINT,
        TopoRelation::Intersects => table1::INTERSECTS,
        TopoRelation::Covers => table1::COVERS,
        TopoRelation::CoveredBy => table1::COVERED_BY,
        TopoRelation::Equals => table1::EQUALS,
        TopoRelation::Contains => table1::CONTAINS,
        TopoRelation::Inside => table1::INSIDE,
        TopoRelation::Meets => table1::MEETS,
    }
}

/// Whether the matrix satisfies `rel` per Table 1.
#[inline]
pub fn matrix_satisfies(m: &De9Im, rel: TopoRelation) -> bool {
    masks_for(rel).iter().any(|mask| mask.matches(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render() {
        for p in ["FF*FF****", "T*F**FFF*", "*********", "TTTTTTTTT"] {
            assert_eq!(Mask::parse(p).pattern(), p);
        }
    }

    #[test]
    fn star_matches_anything() {
        let any = Mask::parse("*********");
        assert!(any.matches(&De9Im::ALL_TRUE));
        assert!(any.matches(&De9Im::EMPTY));
        assert!(any.matches(&De9Im::DISJOINT));
    }

    #[test]
    fn disjoint_matrix_matches_only_disjoint() {
        let m = De9Im::DISJOINT;
        assert!(matrix_satisfies(&m, TopoRelation::Disjoint));
        assert!(!matrix_satisfies(&m, TopoRelation::Intersects));
        assert!(!matrix_satisfies(&m, TopoRelation::Meets));
        assert!(!matrix_satisfies(&m, TopoRelation::Equals));
        assert!(!matrix_satisfies(&m, TopoRelation::Inside));
        assert!(!matrix_satisfies(&m, TopoRelation::Contains));
        assert!(!matrix_satisfies(&m, TopoRelation::Covers));
        assert!(!matrix_satisfies(&m, TopoRelation::CoveredBy));
    }

    #[test]
    fn canonical_matrices() {
        // r strictly inside s (no boundary contact).
        let inside = De9Im::from_code("TFFTFFTTT");
        assert!(matrix_satisfies(&inside, TopoRelation::Inside));
        assert!(matrix_satisfies(&inside, TopoRelation::CoveredBy));
        assert!(matrix_satisfies(&inside, TopoRelation::Intersects));
        assert!(!matrix_satisfies(&inside, TopoRelation::Contains));
        assert!(!matrix_satisfies(&inside, TopoRelation::Equals));
        assert!(!matrix_satisfies(&inside, TopoRelation::Meets));

        // The transpose is contains/covers.
        let contains = inside.transposed();
        assert!(matrix_satisfies(&contains, TopoRelation::Contains));
        assert!(matrix_satisfies(&contains, TopoRelation::Covers));
        assert!(!matrix_satisfies(&contains, TopoRelation::Inside));

        // Equal polygons: interiors equal, boundaries equal.
        let equals = De9Im::from_code("TFFFTFFFT");
        assert!(matrix_satisfies(&equals, TopoRelation::Equals));
        assert!(matrix_satisfies(&equals, TopoRelation::Covers));
        assert!(matrix_satisfies(&equals, TopoRelation::CoveredBy));
        assert!(matrix_satisfies(&equals, TopoRelation::Intersects));
        assert!(!matrix_satisfies(&equals, TopoRelation::Meets));

        // Touching at a boundary point/edge only.
        let meets = De9Im::from_code("FFTFTFTTT");
        assert!(matrix_satisfies(&meets, TopoRelation::Meets));
        assert!(matrix_satisfies(&meets, TopoRelation::Intersects));
        assert!(!matrix_satisfies(&meets, TopoRelation::Disjoint));

        // Proper overlap: everything true.
        let overlap = De9Im::ALL_TRUE;
        assert!(matrix_satisfies(&overlap, TopoRelation::Intersects));
        assert!(!matrix_satisfies(&overlap, TopoRelation::Meets));
        assert!(!matrix_satisfies(&overlap, TopoRelation::Inside));
        assert!(!matrix_satisfies(&overlap, TopoRelation::Contains));
    }

    #[test]
    fn covers_vs_contains_masks() {
        // s inside r but touching r's boundary from within: II=T, but
        // boundary(s) intersects boundary(r); interior(r) has parts
        // outside s; nothing of s in r's exterior.
        // Matrix rows (r parts) x cols (s parts):
        // II=T IB=T IE=T / BI=F BB=T BE=T / EI=F EB=F EE=T
        let covers_touching = De9Im::from_code("TTTFTTFFT");
        assert!(matrix_satisfies(&covers_touching, TopoRelation::Covers));
        // The raw Table 1 `contains` mask also matches (it does not look
        // at the BB cell); the strict/touching distinction is made at the
        // relation level by `TopoRelation::holds`, which additionally
        // requires BB=F for strict containment.
        assert!(matrix_satisfies(&covers_touching, TopoRelation::Contains));
        assert!(!TopoRelation::Contains.holds(&covers_touching));
        assert!(TopoRelation::Covers.holds(&covers_touching));
        assert_eq!(
            TopoRelation::most_specific(&covers_touching),
            TopoRelation::Covers
        );
    }

    #[test]
    fn every_mask_set_is_internally_consistent() {
        use TopoRelation::*;
        for rel in [
            Disjoint, Intersects, Covers, CoveredBy, Equals, Contains, Inside, Meets,
        ] {
            for m in masks_for(rel) {
                // Pattern parse/render roundtrip through the public API.
                assert_eq!(Mask::parse(&m.pattern()), *m);
            }
        }
    }
}
