//! Offline stand-in for [`proptest`](https://docs.rs/proptest/1).
//!
//! Provides the API subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - range and tuple [`Strategy`]s, [`Strategy::prop_map`],
//!   [`collection::vec`],
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - [`ProptestConfig::with_cases`].
//!
//! Each test runs its strategies through a deterministic per-test RNG
//! for the configured number of cases. There is **no shrinking**: on
//! failure the generated inputs are printed verbatim so the case can be
//! replayed or turned into a unit test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (stand-in for `TestRunner`).
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic per-test runner; `salt` is derived from the test
    /// name so sibling properties see different streams.
    pub fn new(salt: u64) -> TestRunner {
        TestRunner {
            rng: StdRng::seed_from_u64(0x9275_7E57 ^ salt),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`;
/// generation only, no value trees / shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Full-domain strategy for a primitive (stand-in for `any::<T>()`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types [`any`] can generate.
pub trait ArbitraryPrim: std::fmt::Debug + Sized {
    /// One uniformly distributed value over the full domain.
    fn arbitrary<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for bool {
    fn arbitrary<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner.rng())
    }
}

/// Strategy producing any value of `T` (uniform over the full domain).
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A fixed value is a strategy for itself (proptest's `Just`-ish
/// conveniences for primitives).
macro_rules! value_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for $t {
            type Value = $t;
            fn generate(&self, _runner: &mut TestRunner) -> $t {
                *self
            }
        }
    )*};
}

value_strategy!(bool);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                runner.rng().gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestRunner,
    };
}

/// Fails the current case (plain `assert!`; the harness prints inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Fails the current case (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Fails the current case (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// FNV-1a over the test name: a stable per-test RNG salt.
#[doc(hidden)]
pub fn name_salt(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for the configured number of
/// generated cases. Failing cases print their inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    // Internal `@funcs` arms must precede the public catch-all arm:
    // macro arms match in order, and `$($rest:tt)*` would otherwise
    // swallow the recursive `@funcs` invocations.
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // The call site writes `#[test]` itself (it is part of `$meta`,
        // matching upstream proptest's grammar).
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::TestRunner::new($crate::name_salt(concat!(module_path!(), "::", stringify!($name))));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        inputs
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, f in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_strategies_apply(v in (1usize..4, 0u64..5).prop_map(|(n, s)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn collections_respect_len(v in collection::vec((0u64..60, 1u64..8), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 60 && (1..8).contains(&b));
            }
        }
    }

    #[test]
    fn salt_differs_by_name() {
        assert_ne!(crate::name_salt("a"), crate::name_salt("b"));
    }
}
