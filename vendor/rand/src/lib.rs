//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the API subset the workspace uses — `Rng::gen_range`
//! / `gen_bool` / `gen`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng` — backed by xoshiro256++ seeded through SplitMix64.
//!
//! The streams differ from upstream `rand`'s `StdRng` (ChaCha12), so
//! seeded datasets are reproducible *within* this workspace but not
//! bit-identical to ones generated with the real crate. All workspace
//! generators only rely on seed-determinism, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the subset of `rand::Rng` the workspace
/// uses, with the same method semantics.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a supported type (`f64` in `[0,1)`,
    /// integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Seeding interface mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (stand-in for `rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// `u64` in `[0, 1)` as an `f64` with 53 random mantissa bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

// No `f32` impl: `f64` as the sole float candidate lets `{float}`
// range literals (`gen_range(0.3..1.5)`) infer without annotation,
// which upstream rand achieves through its `SampleUniform` machinery.

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sample; bias is < 2^-64.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi.wrapping_add(1)).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    ///
    /// Small, fast and high-quality; *not* stream-compatible with
    /// upstream `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5..8usize);
            assert!((5..8).contains(&i));
            let j = rng.gen_range(0..=2u64);
            assert!(j <= 2);
            let k = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
