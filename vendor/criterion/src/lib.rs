//! Offline stand-in for [`criterion`](https://docs.rs/criterion/0.5).
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — with a
//! simple warm-up + timed-sample measurement loop instead of
//! criterion's statistical machinery. Each benchmark prints
//! `min/median/max` ns-per-iteration on one line, so runs remain
//! comparable across commits.
//!
//! Supports the standard `cargo bench -- <filter>` substring filter and
//! ignores criterion's own flags (`--bench`, `--save-baseline`, ...).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the per-benchmark measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Applies `cargo bench` command-line arguments (substring filter;
    /// harness flags are ignored).
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags with a value we must swallow.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                | "--warm-up-time" | "--measurement-time" | "--color" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, name, f);
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let group = self.name.clone();
        let saved = self.criterion.sample_size;
        if let Some(s) = self.sample_size {
            self.criterion.sample_size = s;
        }
        run_one(self.criterion, Some(&group), &id.0, |b| f(b, input));
        self.criterion.sample_size = saved;
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(BenchmarkId::from(name), &(), |b, ()| f(b));
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId(name.to_string())
    }
}

/// The per-benchmark timing handle passed to the closure.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    reported: Option<Report>,
}

struct Report {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine`: warm-up, then `sample_size` timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.criterion.warm_up {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);

        let samples = self.criterion.sample_size;
        let budget_ns = self.criterion.measurement.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / samples as f64 / est_ns).round() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.reported = Some(Report {
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            max_ns: *per_iter.last().unwrap(),
            iters: iters_per_sample * samples as u64,
        });
    }
}

fn run_one<F>(criterion: &mut Criterion, group: Option<&str>, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let id = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if !criterion.matches(&id) {
        return;
    }
    let mut bencher = Bencher {
        criterion,
        reported: None,
    };
    f(&mut bencher);
    match bencher.reported {
        Some(r) => println!(
            "{id:<50} time: [{} {} {}]  ({} iters)",
            fmt_ns(r.min_ns),
            fmt_ns(r.median_ns),
            fmt_ns(r.max_ns),
            r.iters
        ),
        None => println!("{id:<50} (no measurement)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Builds the group-runner function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Builds the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_excludes_nonmatching() {
        let mut c = Criterion {
            filter: Some("nope".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
    }
}
