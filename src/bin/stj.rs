//! `stj` — command-line front end for spatial topology joins.
//!
//! ```text
//! stj relate <WKT> <WKT>                    DE-9IM + most specific relation
//! stj generate <DATASET> <SCALE> <OUT.wkt>  write a synthetic dataset as WKT
//! stj preprocess <IN.wkt> <OUT.stjd> [opts] build MBRs + APRIL, save binary
//!     --order N      grid order (default 16)
//!     --extent x0 y0 x1 y1   grid extent (default: dataset MBR + 1%)
//!     --name NAME    dataset name (default: file stem)
//!     --format v1|v2 storage format (default v2: columnar, zero-copy
//!                    loadable; v1 is the legacy per-object record format)
//! stj info <DATASET.stjd>                   format version, counts, sections
//! stj join <LEFT.stjd> <RIGHT.stjd> [opts]  run the topology join
//!     --method pc|st2|op2|april   (default pc)
//!     --predicate REL             relate_p mode (inside, meets, ...)
//!     --exec streaming|materialized  executor strategy (default
//!                                 streaming: fused tile-at-a-time
//!                                 candidate generation; materialized
//!                                 builds the full candidate list first)
//!     --threads N                 worker threads (0 = auto-detect via
//!                                 available_parallelism; default 0)
//!     --ntriples OUT.nt           write GeoSPARQL links as N-Triples
//!     --stats-json OUT.json       write a machine-readable join report
//!                                 (per-stage latency histograms, scheduler
//!                                 contention metrics, and per-site
//!                                 allocation attribution; enables profiling)
//!     --trace OUT.json            flight-recorder trace of the streaming
//!                                 executor as Chrome trace-event JSON
//!                                 (open in chrome://tracing or Perfetto)
//!     --adaptive on|off|force-skip  adaptive filter ordering (default on):
//!                                 per-MBR-class counters decide after a
//!                                 warm-up whether the APRIL stage pays for
//!                                 itself; links are identical in every
//!                                 mode, only wall time and the stage
//!                                 split move. `off` restores the static
//!                                 pipeline; `force-skip` bypasses APRIL
//!                                 everywhere (debugging/benchmarks)
//!     --progress                  pairs/sec heartbeat on stderr
//!     --quiet                     suppress the human-readable summary
//! stj bench-diff <BASELINE.json> <CURRENT.json> [--threshold PCT]
//!     compare two stj-bench/v1 documents run-by-run; exits non-zero
//!     when any metric regresses beyond the threshold (default 10%)
//! ```
//!
//! ```text
//! stj serve [opts]                          run the online query service
//!     --data FILE.stjd   dataset to load (repeatable; zero-copy when
//!                        the platform supports it)
//!     --addr HOST:PORT   listen address (default 127.0.0.1:7878;
//!                        port 0 picks a free port)
//!     --threads N        worker threads (0 = auto; default 0)
//!     --queue-depth N    bounded accept queue; beyond it connections
//!                        are shed with 429 + Retry-After (default 64)
//!     --cache-mb N       probe-result LRU cache budget (default 64)
//!     --deadline-ms N    per-request deadline; responses that hit it
//!                        carry truncated:true (0 = off; default 2000)
//!     --max-links N      server-side cap for /v1/join (default 100000)
//!     --adaptive on|off|force-skip  adaptive filter ordering (default on);
//!                        one resident model warms across relate requests
//!                        and its decision trace is exported at /stats
//!     --stats-json OUT   write the final stj-serve-report/v1 on drain
//!     --quiet            suppress startup/drain chatter on stderr
//! stj query --addr HOST:PORT [--framed] <SUB>   one-shot client
//!     relate <DATASET> <WKT> [--limit N]
//!     pair <LEFT> <I> <RIGHT> <J>
//!     join <LEFT> <RIGHT> [--method M] [--predicate REL] [--max-links N]
//!     stats | metrics | datasets | healthz
//! ```
//!
//! ```text
//! stj check [opts]                          differential correctness harness
//!     --seed S       run seed: decimal, 0x-hex, or any string (hashed)
//!     --pairs N      adversarial pairs to check (default 1000)
//!     --threads N    worker threads (default 1; results identical)
//!     --order N      grid order for APRIL rasterization (default 8)
//!     --json OUT     write the stj-check-report/v1 JSON summary
//!     --dump OUT     WKT repro file for violations (default stj-check-repro.wkt)
//! ```
//!
//! `check` exits non-zero when any invariant is violated.
//!
//! Join statistics go to **stderr**; stdout stays clean/pipeable.
//! Datasets for `generate`: TL TW TC TZ OBE OLE OPE OBN OLN OPN.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use stjoin::core::linking::links_to_ntriples;
use stjoin::core::DatasetArena;
use stjoin::core::{ExecStrategy, JoinMethod, TopologyJoin};
use stjoin::datagen::DatasetId;
use stjoin::geom::wkt::polygon_from_wkt;
use stjoin::obs::Json;
use stjoin::prelude::*;
use stjoin::store::{
    dataset_info, external_join_files, is_manifest_file, open_arena, read_manifest_file,
    read_wkt_polygons, write_arena_v2, write_dataset, write_sharded, write_wkt_polygons,
    ShardedDataset,
};

/// Passthrough to the system allocator that feeds the stage-tagged
/// attribution counters in [`stjoin::obs::alloc`]. The hook is a single
/// relaxed load unless a `--stats-json` join turned tracking on.
struct SiteCountingAlloc;

unsafe impl GlobalAlloc for SiteCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        stjoin::obs::alloc::note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        stjoin::obs::alloc::note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: SiteCountingAlloc = SiteCountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("relate") => cmd_relate(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("preprocess") => cmd_preprocess(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("join") => cmd_join(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("discover") => cmd_discover(&args[1..]),
        Some("check") => return cmd_check(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
stj — scalable spatial topology joins

USAGE:
  stj relate <WKT> <WKT>
  stj generate <DATASET> <SCALE> <OUT.wkt>
  stj preprocess <IN.wkt> <OUT.stjd> [--order N] [--extent x0 y0 x1 y1] [--name NAME]
                 [--format v1|v2] [--shards N (write OUT as an STJM manifest
                 plus N Hilbert-range shard files for out-of-core joins)]
  stj info <DATASET.stjd|MANIFEST.stjm>
  stj join <LEFT> <RIGHT> [--method pc|st2|op2|april]
           (either side may be a .stjd dataset or a .stjm shard manifest;
            a manifest on either side selects the out-of-core driver)
           [--predicate REL] [--exec streaming|materialized]
           [--threads N (0 = auto)] [--adaptive on|off|force-skip]
           [--ntriples OUT.nt]
           [--stats-json OUT.json] [--trace OUT.json] [--progress] [--quiet]
  stj bench-diff <BASELINE.json> <CURRENT.json> [--threshold PCT]
  stj serve --data <FILE.stjd> [--data <FILE.stjd> ...] [--addr HOST:PORT]
            [--threads N (0 = auto)] [--queue-depth N] [--cache-mb N]
            [--deadline-ms N (0 = off)] [--max-links N]
            [--idle-ms N] [--header-ms N (slow-loris bound)]
            [--adaptive on|off|force-skip]
            [--stats-json OUT.json] [--quiet]
            (SIGHUP or POST /v1/admin/reload hot-swaps the datasets)
  stj query --addr HOST:PORT [--framed] [--no-retry] <SUBCOMMAND>
            relate <DATASET> <WKT> [--limit N]
            pair <LEFT> <I> <RIGHT> <J>
            join <LEFT> <RIGHT> [--method M] [--predicate REL] [--max-links N]
            discover <DATASET> [--format ndjson|nt] [--name NAME]
                     (WKT probes on stdin, streamed links on stdout)
            reload [PATH ...]
            stats | metrics | datasets | healthz
            (429 sheds honor Retry-After with bounded retries unless
             --no-retry)
  stj discover --data <FILE.stjd> [--format ndjson|nt] [--name NAME]
            (offline twin of /v1/discover: WKT probes on stdin,
             links on stdout)
  stj check [--seed S] [--pairs N] [--threads N] [--order N]
            [--json OUT.json] [--dump OUT.wkt]
";

fn cmd_relate(args: &[String]) -> Result<(), String> {
    let [a, b] = args else {
        return Err("relate needs exactly two WKT arguments".into());
    };
    let pa = polygon_from_wkt(a).map_err(|e| format!("first geometry: {e}"))?;
    let pb = polygon_from_wkt(b).map_err(|e| format!("second geometry: {e}"))?;
    let m = relate(&pa, &pb);
    println!("DE-9IM:   {m}");
    println!("relation: {}", TopoRelation::most_specific(&m));
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [name, scale, out] = args else {
        return Err("generate needs <DATASET> <SCALE> <OUT.wkt>".into());
    };
    let id = parse_dataset(name)?;
    let scale: f64 = scale.parse().map_err(|_| format!("bad scale {scale:?}"))?;
    let polys = stjoin::datagen::generate(id, scale);
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    write_wkt_polygons(&mut w, &polys).map_err(|e| format!("write {out}: {e}"))?;
    w.flush().map_err(|e| e.to_string())?;
    println!("wrote {} polygons to {out}", polys.len());
    Ok(())
}

fn cmd_preprocess(args: &[String]) -> Result<(), String> {
    let mut pos = Vec::new();
    let mut order = 16u32;
    let mut name: Option<String> = None;
    let mut extent: Option<Rect> = None;
    let mut format = "v2";
    let mut shards = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--order" => {
                order = next_arg(&mut it, "--order")?
                    .parse()
                    .map_err(|_| "bad --order value".to_string())?;
            }
            "--shards" => {
                shards = next_arg(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "bad --shards value".to_string())?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--name" => name = Some(next_arg(&mut it, "--name")?),
            "--format" => {
                format = match next_arg(&mut it, "--format")?.as_str() {
                    "v1" => "v1",
                    "v2" => "v2",
                    other => return Err(format!("unknown format {other:?} (expected v1 or v2)")),
                };
            }
            "--extent" => {
                let mut v = [0.0f64; 4];
                for slot in &mut v {
                    *slot = next_arg(&mut it, "--extent")?
                        .parse()
                        .map_err(|_| "bad --extent value".to_string())?;
                }
                extent = Some(Rect::from_coords(v[0], v[1], v[2], v[3]));
            }
            other => pos.push(other.to_string()),
        }
    }
    let [input, output] = pos.as_slice() else {
        return Err("preprocess needs <IN.wkt> <OUT.stjd>".into());
    };

    let f = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let polys = read_wkt_polygons(BufReader::new(f)).map_err(|e| e.to_string())?;
    if polys.is_empty() {
        return Err("input contains no polygons".into());
    }
    let extent = extent.unwrap_or_else(|| {
        let mut r = Rect::empty();
        for p in &polys {
            r.grow_rect(p.mbr());
        }
        // Pad 1% so border objects don't sit exactly on the grid edge.
        let (w, h) = (r.width() * 0.01, r.height() * 0.01);
        Rect::from_coords(r.min.x - w, r.min.y - h, r.max.x + w, r.max.y + h)
    });
    let grid = Grid::new(extent, order);
    let ds_name = name.unwrap_or_else(|| {
        std::path::Path::new(input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".into())
    });
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let count = polys.len();
    let ds = Dataset::build_parallel(ds_name, polys, &grid, threads);
    if shards > 0 {
        if format == "v1" {
            return Err(
                "--shards writes STJD v2 shard files; it cannot combine with --format v1".into(),
            );
        }
        let manifest = write_sharded(std::path::Path::new(output), &ds.to_arena(), &grid, shards)
            .map_err(|e| format!("write {output}: {e}"))?;
        println!(
            "preprocessed {count} polygons into {} Hilbert shard(s) (grid order {order}) -> {output}",
            manifest.shards.len()
        );
        return Ok(());
    }
    let f = File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    let mut w = BufWriter::new(f);
    if format == "v2" {
        write_arena_v2(&mut w, &ds.to_arena(), &grid).map_err(|e| e.to_string())?;
    } else {
        write_dataset(&mut w, &ds, &grid).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    println!("preprocessed {count} polygons (grid order {order}, format {format}) -> {output}");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs exactly one <DATASET.stjd> argument".into());
    };
    if is_manifest_file(std::path::Path::new(path)) {
        let bytes = std::fs::metadata(path)
            .map_err(|e| format!("{path}: {e}"))?
            .len();
        let m =
            read_manifest_file(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        println!("file:     {path} ({bytes} bytes)");
        println!("format:   STJM shard manifest");
        println!("name:     {}", m.name);
        let e = m.grid.extent();
        println!(
            "grid:     order {} over ({}, {})..({}, {})",
            m.grid.order(),
            e.min.x,
            e.min.y,
            e.max.x,
            e.max.y
        );
        println!(
            "objects:  {} across {} shard(s)",
            m.total_objects(),
            m.shards.len()
        );
        for (k, s) in m.shards.iter().enumerate() {
            println!(
                "  shard {k}: {} ({} objects, hilbert {}..={}, extent ({}, {})..({}, {}))",
                s.file,
                s.ids.len(),
                s.d_lo,
                s.d_hi,
                s.extent.min.x,
                s.extent.min.y,
                s.extent.max.x,
                s.extent.max.y
            );
        }
        return Ok(());
    }
    let info = dataset_info(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    println!("file:     {path} ({} bytes)", info.file_bytes);
    println!("format:   STJD v{}", info.version);
    println!("name:     {}", info.name);
    println!(
        "grid:     order {} over ({}, {})..({}, {})",
        info.order, info.extent.min.x, info.extent.min.y, info.extent.max.x, info.extent.max.y
    );
    println!(
        "objects:  {} ({} rings, {} vertices)",
        info.n_objects, info.n_rings, info.n_vertices
    );
    println!(
        "april:    {} P intervals, {} C intervals",
        info.n_p, info.n_c
    );
    if !info.sections.is_empty() {
        println!("sections:");
        for (name, bytes) in &info.sections {
            println!("  {name:<14} {bytes} bytes");
        }
    }
    Ok(())
}

fn cmd_join(args: &[String]) -> Result<(), String> {
    let mut pos = Vec::new();
    let mut method = JoinMethod::PC;
    let mut method_name = "pc";
    let mut predicate: Option<TopoRelation> = None;
    let mut strategy = ExecStrategy::Streaming;
    let mut strategy_name = "streaming";
    // 0 = auto-detect (available_parallelism), resolved by TopologyJoin.
    let mut threads = 0usize;
    let mut ntriples: Option<String> = None;
    let mut stats_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut progress = false;
    let mut quiet = false;
    // The CLI defaults adaptive ordering on: skipping APRIL only ever
    // re-routes a pair to exact refinement, so links are identical and
    // `--adaptive off` exists for stage-attribution reproducibility.
    let mut adaptive = AdaptiveMode::On;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => {
                let name = next_arg(&mut it, "--method")?;
                (method, method_name) = match name.as_str() {
                    "pc" => (JoinMethod::PC, "pc"),
                    "st2" => (JoinMethod::St2, "st2"),
                    "op2" => (JoinMethod::Op2, "op2"),
                    "april" => (JoinMethod::April, "april"),
                    other => return Err(format!("unknown method {other:?}")),
                };
            }
            "--predicate" => predicate = Some(parse_relation(&next_arg(&mut it, "--predicate")?)?),
            "--exec" => {
                let name = next_arg(&mut it, "--exec")?;
                (strategy, strategy_name) = match name.as_str() {
                    "streaming" => (ExecStrategy::Streaming, "streaming"),
                    "materialized" => (ExecStrategy::Materialized, "materialized"),
                    other => {
                        return Err(format!(
                            "unknown exec strategy {other:?} (expected streaming or materialized)"
                        ))
                    }
                };
            }
            "--threads" => {
                threads = next_arg(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "bad --threads value".to_string())?;
            }
            "--ntriples" => ntriples = Some(next_arg(&mut it, "--ntriples")?),
            "--stats-json" => stats_json = Some(next_arg(&mut it, "--stats-json")?),
            "--trace" => trace_out = Some(next_arg(&mut it, "--trace")?),
            "--adaptive" => {
                let name = next_arg(&mut it, "--adaptive")?;
                adaptive = AdaptiveMode::parse(&name).ok_or_else(|| {
                    format!("unknown adaptive mode {name:?} (expected on, off, or force-skip)")
                })?;
            }
            "--progress" => progress = true,
            "--quiet" => quiet = true,
            other => pos.push(other.to_string()),
        }
    }
    let [left_path, right_path] = pos.as_slice() else {
        return Err("join needs <LEFT.stjd> <RIGHT.stjd>".into());
    };
    if trace_out.is_some() && strategy == ExecStrategy::Materialized {
        return Err("--trace records per-task spans of the streaming executor; \
             it cannot be combined with --exec materialized"
            .into());
    }
    let external = is_manifest_file(std::path::Path::new(left_path))
        || is_manifest_file(std::path::Path::new(right_path));
    if external && trace_out.is_some() {
        return Err("--trace records the per-task spans of a single in-memory \
             run; it cannot be combined with sharded (out-of-core) inputs \
             (an STJM manifest was given). To trace this join, point it at \
             single-arena .stjd files instead — e.g. re-run preprocess \
             without --shards — or drop --trace to run the sharded join."
            .into());
    }

    let mut join = TopologyJoin::new()
        .method(method)
        .strategy(strategy)
        .threads(threads)
        .adaptive(adaptive)
        .profiled(stats_json.is_some())
        .traced(trace_out.is_some())
        .progress(progress);
    if let Some(p) = predicate {
        join = join.predicate(p);
    }
    // In-memory inputs load outside the timed region, as before; the
    // external driver loads shards lazily, so its wall time includes IO.
    let inputs = if external {
        None
    } else {
        let (left, lgrid) = load(left_path)?;
        let (right, rgrid) = load(right_path)?;
        if lgrid != rgrid {
            return Err(format!(
                "grid mismatch: {left_path} and {right_path} were preprocessed on \
                 different grids; re-run preprocess with a common --extent/--order"
            ));
        }
        Some((left, right))
    };
    // Bracket the run with the site-attribution counters so the report
    // can split the refine path's allocations by site.
    let alloc_before = if stats_json.is_some() {
        stjoin::obs::alloc::reset();
        stjoin::obs::alloc::set_tracking(true);
        Some(stjoin::obs::alloc::snapshot())
    } else {
        None
    };
    let t = std::time::Instant::now();
    let (out, lname, rname) = match &inputs {
        Some((left, right)) => (
            join.run(left, right),
            left.name().to_string(),
            right.name().to_string(),
        ),
        None => {
            let left = ShardedDataset::open(std::path::Path::new(left_path))
                .map_err(|e| format!("{left_path}: {e}"))?;
            let right = ShardedDataset::open(std::path::Path::new(right_path))
                .map_err(|e| format!("{right_path}: {e}"))?;
            let out = external_join_files(&join, &left, &right).map_err(|e| e.to_string())?;
            (out, left.name().to_string(), right.name().to_string())
        }
    };
    let dt = t.elapsed();
    let alloc = alloc_before.map(|before| {
        let snap = stjoin::obs::alloc::snapshot().since(&before);
        stjoin::obs::alloc::set_tracking(false);
        snap
    });

    let mut histogram = std::collections::BTreeMap::new();
    for l in &out.links {
        *histogram.entry(l.relation.to_string()).or_insert(0u64) += 1;
    }

    // Human-readable statistics go to stderr: stdout is reserved for
    // pipeable output.
    if !quiet {
        eprintln!(
            "{} x {} -> {} candidates, {} links in {:.2?} ({:.0} pairs/s, {:.1}% refined)",
            lname,
            rname,
            out.candidates,
            out.links.len(),
            dt,
            out.candidates as f64 / dt.as_secs_f64().max(1e-12),
            out.stats.undetermined_pct()
        );
        for (rel, n) in &histogram {
            eprintln!("  {rel:<12} {n}");
        }
    }

    if let Some(path) = stats_json {
        let effective_threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let report = join_report(
            &out,
            &lname,
            &rname,
            method_name,
            strategy_name,
            predicate,
            effective_threads,
            dt,
            &histogram,
            alloc,
            adaptive,
        );
        std::fs::write(&path, report.render()).map_err(|e| format!("write {path}: {e}"))?;
        if !quiet {
            eprintln!("wrote join report to {path}");
        }
    }

    if let Some(path) = trace_out {
        let trace = out
            .trace
            .as_ref()
            .expect("traced streaming run returns a trace");
        std::fs::write(&path, trace.to_chrome_json().render())
            .map_err(|e| format!("write {path}: {e}"))?;
        if !quiet {
            let spans: usize = trace.workers.iter().map(|w| w.spans.len()).sum();
            eprintln!(
                "wrote flight-recorder trace to {path} ({spans} spans on {} workers; \
                 open in chrome://tracing or ui.perfetto.dev)",
                trace.workers.len()
            );
        }
    }

    if let Some(path) = ntriples {
        let nt = links_to_ntriples(
            &out.links,
            |i| format!("urn:stj:{lname}:{i}"),
            |j| format!("urn:stj:{rname}:{j}"),
            false,
        );
        std::fs::write(&path, nt).map_err(|e| format!("write {path}: {e}"))?;
        if !quiet {
            eprintln!("wrote {} link triples to {path}", out.links.len());
        }
    }
    Ok(())
}

/// Assembles the `--stats-json` document (schema `stj-join-report/v1`).
#[allow(clippy::too_many_arguments)]
fn join_report(
    out: &stjoin::core::JoinResult,
    left: &str,
    right: &str,
    method: &str,
    exec: &str,
    predicate: Option<TopoRelation>,
    threads: usize,
    wall: std::time::Duration,
    histogram: &std::collections::BTreeMap<String, u64>,
    alloc: Option<stjoin::obs::AllocSnapshot>,
    adaptive: AdaptiveMode,
) -> Json {
    let wall_ns = wall.as_nanos().min(u128::from(u64::MAX)) as u64;
    let mut report = Json::object([
        ("schema", Json::str("stj-join-report/v1")),
        ("left", Json::str(left)),
        ("right", Json::str(right)),
        ("method", Json::str(method)),
        ("exec", Json::str(exec)),
        (
            "predicate",
            predicate.map_or(Json::Null, |p| Json::str(p.to_string())),
        ),
        ("threads", Json::from(threads)),
        ("candidates", Json::U64(out.candidates)),
        ("links", Json::from(out.links.len())),
        ("wall_ns", Json::U64(wall_ns)),
        (
            "pairs_per_sec",
            Json::F64(out.candidates as f64 / wall.as_secs_f64().max(1e-12)),
        ),
        (
            "stats",
            Json::object([
                ("pairs", Json::U64(out.stats.pairs)),
                ("by_mbr", Json::U64(out.stats.by_mbr)),
                ("by_intermediate", Json::U64(out.stats.by_intermediate)),
                ("refined", Json::U64(out.stats.refined)),
                ("undetermined_pct", Json::F64(out.stats.undetermined_pct())),
            ]),
        ),
        (
            "relations",
            Json::Obj(
                histogram
                    .iter()
                    .map(|(rel, n)| (rel.clone(), Json::U64(*n)))
                    .collect(),
            ),
        ),
    ]);
    // The adaptive decision trace when a model ran; otherwise just the
    // requested mode (off, or a baseline method that never runs one),
    // so consumers always find the key.
    report.push(
        "adaptive",
        out.adaptive.as_ref().map_or_else(
            || Json::object([("mode", Json::str(adaptive.label()))]),
            |r| r.to_json(),
        ),
    );
    if let Some(profile) = &out.profile {
        report.push(
            "profile",
            profile.to_json(&stjoin::core::mbr_class_labels()),
        );
    }
    if let Some(sched) = &out.sched {
        report.push("sched", sched.to_json());
    }
    if let Some(alloc) = alloc {
        report.push("alloc", alloc.to_json());
    }
    report
}

/// How a `bench-diff` metric is judged.
#[derive(Clone, Copy, PartialEq)]
enum MetricKind {
    /// Regression when current exceeds baseline by the threshold
    /// (wall times, byte footprints).
    LowerBetter,
    /// Regression when current falls below baseline by the threshold
    /// (throughputs).
    HigherBetter,
    /// Any change at all is a regression (result counts — a join that
    /// finds different links is broken, not slow).
    Exact,
    /// Regression on *any* increase; decreases pass (and should be
    /// promoted into the baseline). Used for allocation counts: the
    /// scratch arenas make steady-state refinement allocation-free,
    /// so alloc totals are deterministic setup costs — a single
    /// reintroduced per-pair allocation multiplies by the candidate
    /// count, and no percentage threshold should forgive that.
    ExactOrLower,
    /// Reported but never judged (configuration echoes).
    Info,
}

fn metric_kind(name: &str) -> MetricKind {
    match name {
        "candidates" | "links" => MetricKind::Exact,
        "threads" | "stream_batch_pairs" | "objects" | "connections" | "requests" => {
            MetricKind::Info
        }
        "allocs" => MetricKind::ExactOrLower,
        // Load-shedding under the benchmark's open-loop arrival rate:
        // any growth means the server keeps up less well.
        "sheds" | "shed_rate" => MetricKind::LowerBetter,
        // Peak resident set (VmHWM) is reported in bytes but doesn't
        // carry the suffix; growth is a regression.
        "peak_rss" => MetricKind::LowerBetter,
        _ if name.ends_with("_ns") || name.ends_with("_bytes") => MetricKind::LowerBetter,
        _ if name.contains("per_sec") || name.contains("throughput") => MetricKind::HigherBetter,
        _ => MetricKind::Info,
    }
}

/// Numeric fields that are part of a run's *identity* (configuration)
/// rather than its results.
fn is_identity_number(key: &str) -> bool {
    matches!(key, "threads" | "connections")
}

/// The identity of one run within an `stj-bench/v1` document: every
/// string-valued field plus the numeric configuration fields
/// (`threads`, `connections`), rendered `key=value` sorted.
fn run_identity(run: &Json) -> String {
    let Json::Obj(entries) = run else {
        return String::new();
    };
    let mut parts: Vec<String> = entries
        .iter()
        .filter_map(|(k, v)| match v {
            Json::Str(s) => Some(format!("{k}={s}")),
            _ if is_identity_number(k) => v.as_u64().map(|n| format!("{k}={n}")),
            _ => None,
        })
        .collect();
    parts.sort();
    parts.join(" ")
}

/// One-sided identity match: every identity field of the *baseline* run
/// must agree in `cur`; identity fields only the current run carries
/// (e.g. a label added by a newer binary) are ignored, so extending a
/// benchmark's schema doesn't orphan every baseline run.
fn identity_covers(base: &Json, cur: &Json) -> bool {
    let Json::Obj(entries) = base else {
        return false;
    };
    entries.iter().all(|(k, v)| match v {
        Json::Str(s) => cur.get(k).and_then(Json::as_str) == Some(s.as_str()),
        _ if is_identity_number(k) => cur.get(k).and_then(Json::as_u64) == v.as_u64(),
        _ => true,
    })
}

fn load_bench_doc(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("stj-bench/v1") => Ok(doc),
        Some(other) => Err(format!("{path}: schema {other:?}, expected stj-bench/v1")),
        None => Err(format!("{path}: missing schema field")),
    }
}

/// `stj bench-diff`: compares two `stj-bench/v1` documents run-by-run
/// and exits non-zero when any metric regresses beyond the threshold.
fn cmd_bench_diff(args: &[String]) -> Result<(), String> {
    let mut threshold = 10.0f64;
    let mut pos = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = next_arg(&mut it, "--threshold")?
                    .parse()
                    .map_err(|_| "bad --threshold value".to_string())?;
            }
            other => pos.push(other.to_string()),
        }
    }
    let [base_path, cur_path] = pos.as_slice() else {
        return Err("bench-diff needs <BASELINE.json> <CURRENT.json>".into());
    };
    let base = load_bench_doc(base_path)?;
    let cur = load_bench_doc(cur_path)?;

    let empty = Vec::new();
    let base_runs = base.get("runs").and_then(Json::as_arr).unwrap_or(&empty);
    let cur_runs = cur.get("runs").and_then(Json::as_arr).unwrap_or(&empty);

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut new_metrics = 0usize;
    for b in base_runs {
        let id = run_identity(b);
        let Some(c) = cur_runs.iter().find(|c| identity_covers(b, c)) else {
            println!("MISSING  [{id}] not present in {cur_path}");
            regressions += 1;
            continue;
        };
        let Json::Obj(fields) = b else { continue };
        for (name, bval) in fields {
            let kind = metric_kind(name);
            let (Some(bv), Some(cv)) = (bval.as_f64(), c.get(name).and_then(Json::as_f64)) else {
                continue;
            };
            let delta_pct = if bv == 0.0 {
                if cv == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (cv - bv) / bv * 100.0
            };
            let regressed = match kind {
                MetricKind::Exact => cv != bv,
                MetricKind::ExactOrLower => cv > bv,
                MetricKind::LowerBetter => delta_pct > threshold,
                MetricKind::HigherBetter => delta_pct < -threshold,
                MetricKind::Info => false,
            };
            if kind == MetricKind::Info {
                continue;
            }
            compared += 1;
            let tag = if regressed { "REGRESS" } else { "ok" };
            println!("{tag:<8} [{id}] {name}: {bv} -> {cv} ({delta_pct:+.1}%)");
            if regressed {
                regressions += 1;
            }
        }
        // Metrics the current run reports that the baseline never had:
        // warn and continue — a freshly instrumented metric has nothing
        // to regress against until the baseline is refreshed.
        if let Json::Obj(cfields) = c {
            for (name, cval) in cfields {
                if b.get(name).is_some() || metric_kind(name) == MetricKind::Info {
                    continue;
                }
                if let Some(cv) = cval.as_f64() {
                    new_metrics += 1;
                    println!("NEW      [{id}] {name}: {cv} (not in baseline; skipped)");
                }
            }
        }
    }
    println!(
        "bench-diff: {compared} metric(s) compared across {} run(s), \
         {regressions} regression(s) at ±{threshold}%, \
         {new_metrics} new metric(s) skipped",
        base_runs.len()
    );
    if regressions > 0 {
        Err(format!(
            "{regressions} regression(s) beyond the {threshold}% threshold"
        ))
    } else {
        Ok(())
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use stjoin::serve::{install_signal_handlers, load_datasets, ServeConfig, ServeCtx, Server};

    let mut cfg = ServeConfig::default();
    let mut data: Vec<String> = Vec::new();
    let mut stats_json: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data" => data.push(next_arg(&mut it, "--data")?),
            "--addr" => cfg.addr = next_arg(&mut it, "--addr")?,
            "--threads" => {
                cfg.threads = next_arg(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "bad --threads value".to_string())?;
            }
            "--queue-depth" => {
                cfg.queue_depth = next_arg(&mut it, "--queue-depth")?
                    .parse()
                    .map_err(|_| "bad --queue-depth value".to_string())?;
            }
            "--cache-mb" => {
                cfg.cache_mb = next_arg(&mut it, "--cache-mb")?
                    .parse()
                    .map_err(|_| "bad --cache-mb value".to_string())?;
            }
            "--deadline-ms" => {
                cfg.deadline_ms = next_arg(&mut it, "--deadline-ms")?
                    .parse()
                    .map_err(|_| "bad --deadline-ms value".to_string())?;
            }
            "--max-links" => {
                cfg.max_links = next_arg(&mut it, "--max-links")?
                    .parse()
                    .map_err(|_| "bad --max-links value".to_string())?;
            }
            "--idle-ms" => {
                cfg.idle_ms = next_arg(&mut it, "--idle-ms")?
                    .parse()
                    .map_err(|_| "bad --idle-ms value".to_string())?;
            }
            "--header-ms" => {
                cfg.header_ms = next_arg(&mut it, "--header-ms")?
                    .parse()
                    .map_err(|_| "bad --header-ms value".to_string())?;
            }
            "--adaptive" => {
                let name = next_arg(&mut it, "--adaptive")?;
                cfg.adaptive = AdaptiveMode::parse(&name).ok_or_else(|| {
                    format!("unknown adaptive mode {name:?} (expected on, off, or force-skip)")
                })?;
            }
            "--stats-json" => stats_json = Some(next_arg(&mut it, "--stats-json")?),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }
    if data.is_empty() {
        return Err("serve needs at least one --data <FILE.stjd>".into());
    }

    let datasets = load_datasets(&data)?;
    if !quiet {
        for d in &datasets {
            eprintln!(
                "loaded {:?}: {} objects, grid order {}{}",
                d.name,
                d.arena.len(),
                d.grid.order(),
                if d.arena.is_zero_copy() {
                    " (zero-copy)"
                } else {
                    ""
                }
            );
        }
    }
    let server = Server::bind(ServeCtx::new(cfg, datasets)).map_err(|e| format!("bind: {e}"))?;
    // Remember where the datasets came from so SIGHUP and
    // /v1/admin/reload can hot-swap in fresh generations.
    server
        .ctx()
        .generations
        .set_paths(data.iter().map(std::path::PathBuf::from).collect());
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    install_signal_handlers();

    // The address line goes to stdout (and is flushed) so scripts can
    // scrape the picked port when binding to :0.
    println!("listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let ctx = server.ctx();
    server.run().map_err(|e| format!("serve: {e}"))?;

    if let Some(path) = stats_json {
        let final_stats = stjoin::serve::dispatch(&ctx, "GET", "/stats", &[], b"");
        std::fs::write(&path, final_stats.body).map_err(|e| format!("write {path}: {e}"))?;
        if !quiet {
            eprintln!("wrote final stats to {path}");
        }
    }
    if !quiet {
        eprintln!(
            "drained after {} request(s), exiting",
            ctx.stats.requests_total.get()
        );
    }
    Ok(())
}

/// Percent-encodes a query-string value (RFC 3986 unreserved set).
fn encode_query_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    use stjoin::serve::Client;

    let mut addr: Option<String> = None;
    let mut framed = false;
    let mut no_retry = false;
    let mut limit: Option<u64> = None;
    let mut method: Option<String> = None;
    let mut predicate: Option<String> = None;
    let mut max_links: Option<u64> = None;
    let mut format: Option<String> = None;
    let mut name: Option<String> = None;
    let mut pos: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(next_arg(&mut it, "--addr")?),
            "--framed" => framed = true,
            "--no-retry" => no_retry = true,
            "--format" => format = Some(next_arg(&mut it, "--format")?),
            "--name" => name = Some(next_arg(&mut it, "--name")?),
            "--limit" => {
                limit = Some(
                    next_arg(&mut it, "--limit")?
                        .parse()
                        .map_err(|_| "bad --limit value".to_string())?,
                );
            }
            "--method" => method = Some(next_arg(&mut it, "--method")?),
            "--predicate" => predicate = Some(next_arg(&mut it, "--predicate")?),
            "--max-links" => {
                max_links = Some(
                    next_arg(&mut it, "--max-links")?
                        .parse()
                        .map_err(|_| "bad --max-links value".to_string())?,
                );
            }
            other => pos.push(other.to_string()),
        }
    }
    let addr = addr.ok_or("query needs --addr HOST:PORT")?;

    let (http_method, target, body): (&str, String, Vec<u8>) = match pos.first().map(String::as_str)
    {
        Some("relate") => {
            let [_, dataset, wkt] = pos.as_slice() else {
                return Err("query relate needs <DATASET> <WKT>".into());
            };
            let mut target = format!("/v1/relate?dataset={}", encode_query_value(dataset));
            if let Some(n) = limit {
                target.push_str(&format!("&limit={n}"));
            }
            ("POST", target, wkt.clone().into_bytes())
        }
        Some("pair") => {
            let [_, left, i, right, j] = pos.as_slice() else {
                return Err("query pair needs <LEFT> <I> <RIGHT> <J>".into());
            };
            let target = format!(
                "/v1/pair?left={}&i={}&right={}&j={}",
                encode_query_value(left),
                encode_query_value(i),
                encode_query_value(right),
                encode_query_value(j),
            );
            ("GET", target, Vec::new())
        }
        Some("join") => {
            let [_, left, right] = pos.as_slice() else {
                return Err("query join needs <LEFT> <RIGHT>".into());
            };
            let mut target = format!(
                "/v1/join?left={}&right={}",
                encode_query_value(left),
                encode_query_value(right),
            );
            if let Some(m) = &method {
                target.push_str(&format!("&method={}", encode_query_value(m)));
            }
            if let Some(p) = &predicate {
                target.push_str(&format!("&predicate={}", encode_query_value(p)));
            }
            if let Some(n) = max_links {
                target.push_str(&format!("&max_links={n}"));
            }
            ("POST", target, Vec::new())
        }
        Some("discover") => {
            let [_, dataset] = pos.as_slice() else {
                return Err("query discover needs <DATASET> (WKT probes on stdin)".into());
            };
            let mut target = format!("/v1/discover?dataset={}", encode_query_value(dataset));
            if let Some(f) = &format {
                target.push_str(&format!("&format={}", encode_query_value(f)));
            }
            if let Some(n) = &name {
                target.push_str(&format!("&name={}", encode_query_value(n)));
            }
            let mut body = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut body)
                .map_err(|e| format!("stdin: {e}"))?;
            ("POST", target, body)
        }
        Some("reload") => {
            // Optional positional paths become the new dataset set;
            // with none the server reloads its configured paths.
            let body = pos[1..].join("\n").into_bytes();
            ("POST", "/v1/admin/reload".to_string(), body)
        }
        Some("stats") => ("GET", "/stats".to_string(), Vec::new()),
        Some("metrics") => ("GET", "/metrics".to_string(), Vec::new()),
        Some("datasets") => ("GET", "/v1/datasets".to_string(), Vec::new()),
        Some("healthz") => ("GET", "/healthz".to_string(), Vec::new()),
        _ => {
            return Err(
                "query needs a subcommand: relate | pair | join | discover | reload | stats \
                 | metrics | datasets | healthz"
                    .into(),
            )
        }
    };

    // A shed (429) carries a Retry-After hint; honor it with bounded
    // retries so transient overload doesn't fail scripted clients.
    const MAX_RETRIES: u32 = 3;
    const MAX_RETRY_AFTER_SECS: u64 = 5;
    let mut client = Client::new(addr, framed);
    let mut attempts = 0u32;
    let (status, resp_body) = loop {
        let (status, resp_body) = client
            .request(http_method, &target, &body)
            .map_err(|e| format!("request failed: {e}"))?;
        if status == 429 && !no_retry && attempts < MAX_RETRIES {
            attempts += 1;
            let wait = client
                .retry_after()
                .unwrap_or(1)
                .clamp(1, MAX_RETRY_AFTER_SECS);
            eprintln!(
                "server shed the request (429); retry {attempts}/{MAX_RETRIES} in {wait}s"
            );
            std::thread::sleep(std::time::Duration::from_secs(wait));
            continue;
        }
        break (status, resp_body);
    };
    // The response body goes to stdout verbatim (it is already JSON or
    // NDJSON); the status decides the exit code.
    let mut stdout = std::io::stdout();
    stdout.write_all(&resp_body).map_err(|e| e.to_string())?;
    stdout.flush().map_err(|e| e.to_string())?;
    if (200..300).contains(&status) {
        Ok(())
    } else {
        Err(format!("server returned {status}"))
    }
}

/// `stj discover`: bulk link discovery against a local dataset file —
/// the offline twin of `POST /v1/discover`. WKT probe polygons arrive
/// one per line on stdin; links stream to stdout as they are found, so
/// memory stays bounded by one probe at a time.
fn cmd_discover(args: &[String]) -> Result<(), String> {
    use stjoin::core::RelateScratch;
    use stjoin::serve::discover::{discover_probe, DiscoverFormat};
    use stjoin::serve::LoadedDataset;

    let mut data: Option<String> = None;
    let mut format = DiscoverFormat::Ndjson;
    let mut name = "probes".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data" => data = Some(next_arg(&mut it, "--data")?),
            "--format" => {
                let f = next_arg(&mut it, "--format")?;
                format = DiscoverFormat::parse(&f)
                    .ok_or_else(|| format!("unknown format {f:?} (expected ndjson or nt)"))?;
            }
            "--name" => name = next_arg(&mut it, "--name")?,
            other => return Err(format!("unknown discover option {other:?}")),
        }
    }
    let data = data.ok_or("discover needs --data <FILE.stjd>")?;
    let ds = LoadedDataset::open(std::path::Path::new(&data))?;

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut w = BufWriter::new(stdout.lock());
    let mut scratch = RelateScratch::default();
    // The CLI runs the static pipeline: no resident model to warm, and
    // deterministic output for the discover-vs-join equality check.
    let mut adaptive = None;
    let mut out = String::new();
    let (mut probes, mut candidates, mut links) = (0u64, 0u64, 0u64);
    for (lineno, line) in std::io::BufRead::lines(stdin.lock()).enumerate() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let wkt = line.trim();
        if wkt.is_empty() {
            continue;
        }
        let poly =
            polygon_from_wkt(wkt).map_err(|e| format!("probe line {}: {e}", lineno + 1))?;
        out.clear();
        let (c, l) = discover_probe(
            &ds,
            probes,
            poly,
            &name,
            format,
            &mut scratch,
            &mut adaptive,
            &mut out,
        );
        probes += 1;
        candidates += c;
        links += l;
        w.write_all(out.as_bytes()).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    eprintln!("discover: {probes} probe(s), {candidates} candidate(s), {links} link(s)");
    Ok(())
}

fn cmd_check(args: &[String]) -> ExitCode {
    match run_check_cmd(args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_check_cmd(args: &[String]) -> Result<bool, String> {
    use stjoin::check::{run_check, write_repro, CheckConfig};

    let mut config = CheckConfig::default();
    let mut json_out: Option<String> = None;
    let mut dump_out = "stj-check-repro.wkt".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => config.seed = parse_seed(&next_arg(&mut it, "--seed")?),
            "--pairs" => {
                config.pairs = next_arg(&mut it, "--pairs")?
                    .parse()
                    .map_err(|_| "bad --pairs value".to_string())?;
            }
            "--threads" => {
                config.threads = next_arg(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "bad --threads value".to_string())?;
            }
            "--order" => {
                config.grid_order = next_arg(&mut it, "--order")?
                    .parse()
                    .map_err(|_| "bad --order value".to_string())?;
                if !(1..=16).contains(&config.grid_order) {
                    return Err("--order must be in 1..=16".into());
                }
            }
            "--json" => json_out = Some(next_arg(&mut it, "--json")?),
            "--dump" => dump_out = next_arg(&mut it, "--dump")?,
            other => return Err(format!("unknown check option {other:?}")),
        }
    }

    let report = run_check(&config);

    eprintln!(
        "checked {} adversarial pairs (seed {:#x}, {} thread(s), grid order {}) in {} ms: \
         {} violation(s)",
        report.pairs,
        config.seed,
        config.threads.max(1),
        config.grid_order,
        report.elapsed_ms,
        report.total_violations(),
    );
    for v in &report.violations {
        eprintln!(
            "  pair {} [{}] broke {}: {}",
            v.index,
            v.category,
            v.kind.name(),
            v.detail
        );
    }

    if let Some(path) = json_out {
        std::fs::write(&path, report.to_json().render())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote check report to {path}");
    }
    if report.has_violations() {
        let f = File::create(&dump_out).map_err(|e| format!("create {dump_out}: {e}"))?;
        let mut w = BufWriter::new(f);
        write_repro(&mut w, &report).map_err(|e| format!("write {dump_out}: {e}"))?;
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote WKT repro dump to {dump_out}");
    }
    Ok(!report.has_violations())
}

/// Parses a check seed: plain decimal, `0x`-prefixed hex, or — for
/// anything else (e.g. `0xEDBT26`, which is not valid hex) — a stable
/// FNV-1a hash of the string, so any token can name a run.
fn parse_seed(s: &str) -> u64 {
    if let Ok(n) = s.parse::<u64>() {
        return n;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(n) = u64::from_str_radix(hex, 16) {
            return n;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads either format into a [`DatasetArena`]: v2 files open zero-copy
/// when the platform supports it, v1 files migrate through the legacy
/// record reader.
fn load(path: &str) -> Result<(DatasetArena, Grid), String> {
    open_arena(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn next_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_dataset(name: &str) -> Result<DatasetId, String> {
    Ok(match name.to_ascii_uppercase().as_str() {
        "TL" => DatasetId::TL,
        "TW" => DatasetId::TW,
        "TC" => DatasetId::TC,
        "TZ" => DatasetId::TZ,
        "OBE" => DatasetId::OBE,
        "OLE" => DatasetId::OLE,
        "OPE" => DatasetId::OPE,
        "OBN" => DatasetId::OBN,
        "OLN" => DatasetId::OLN,
        "OPN" => DatasetId::OPN,
        other => return Err(format!("unknown dataset {other:?}")),
    })
}

fn parse_relation(name: &str) -> Result<TopoRelation, String> {
    TopoRelation::parse(name).ok_or_else(|| format!("unknown relation {name:?}"))
}
