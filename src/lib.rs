//! # stjoin — Scalable Spatial Topology Joins
//!
//! A from-scratch Rust implementation of the spatial topology join
//! pipeline of Georgiadis & Mamoulis, *Scalable Spatial Topology Joins*
//! (EDBT 2026): detect the most specific topological relation
//! (`disjoint`, `meets`, `intersects`, `equals`, `inside`, `contains`,
//! `covered by`, `covers`) between polygon pairs at scale, using raster
//! interval approximations to avoid most DE-9IM matrix computations.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`geom`] — geometry kernel (robust predicates, polygons, point
//!   location, WKT);
//! - [`de9im`] — DE-9IM matrices, Table-1 masks, topological relations,
//!   and the `relate` refinement oracle;
//! - [`raster`] — Hilbert grid, interval lists, APRIL approximations;
//! - [`index`] — MBR classification (Figure 4) and the MBR join filter
//!   step;
//! - [`core`] — the P+C pipeline ([`find_relation`]), `relate_p`
//!   ([`relate_p`]), and the ST2/OP2/APRIL baselines;
//! - [`datagen`] — seeded synthetic datasets mirroring the paper's
//!   evaluation scenarios;
//! - [`store`] — persistence: the columnar STJD v2 format (bulk-load
//!   or zero-copy open into a [`DatasetArena`]) plus the legacy v1
//!   record format and WKT interchange;
//! - [`obs`] — observability: per-stage latency histograms, join
//!   profiles, JSON telemetry, progress heartbeats;
//! - [`check`] — the differential & metamorphic correctness harness
//!   behind `stj check` (adversarial pairs, invariants (a)–(e),
//!   shrinking, WKT repro dumps);
//! - [`serve`] — the online query service behind `stj serve`: ad-hoc
//!   relate probes, stored-pair lookups, and bounded joins over
//!   resident zero-copy arenas, with load shedding, deadlines, a probe
//!   cache, and a `/stats` report.
//!
//! ## Quickstart
//!
//! ```
//! use stjoin::prelude::*;
//!
//! // One shared grid per join scenario (the paper uses order 16).
//! let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 12);
//!
//! let park = SpatialObject::build(
//!     Polygon::from_coords(
//!         vec![(5.0, 5.0), (95.0, 5.0), (95.0, 95.0), (5.0, 95.0)],
//!         vec![],
//!     )
//!     .unwrap(),
//!     &grid,
//! );
//! let lake = SpatialObject::build(
//!     Polygon::from_coords(
//!         vec![(30.0, 30.0), (60.0, 35.0), (55.0, 60.0)],
//!         vec![],
//!     )
//!     .unwrap(),
//!     &grid,
//! );
//!
//! // The pipeline works on borrowed views: `.view()` on an owned
//! // object, or `DatasetArena::object(i)` in batch joins.
//! let out = find_relation(lake.view(), park.view());
//! assert_eq!(out.relation, TopoRelation::Inside);
//! // Decided from interval lists alone — no DE-9IM computation:
//! assert_eq!(out.determination, Determination::IntermediateFilter);
//! ```

pub use stj_check as check;
pub use stj_core as core;
pub use stj_datagen as datagen;
pub use stj_de9im as de9im;
pub use stj_geom as geom;
pub use stj_index as index;
pub use stj_obs as obs;
pub use stj_raster as raster;
pub use stj_serve as serve;
pub use stj_store as store;

pub use stj_core::{
    find_relation, find_relation_april, find_relation_op2, find_relation_st2, relate_p,
    AdaptiveMode, AdaptiveModel, AdaptiveReport, Dataset, DatasetArena, Determination,
    ExecStrategy, FindOutcome, JoinMethod, JoinResult, Link, ObjectRef, PipelineStats,
    RelateDetermination, RelateOutcome, SpatialObject, TopologyJoin,
};
pub use stj_de9im::{relate, De9Im, Mask, TopoRelation};
pub use stj_geom::{MultiPolygon, Point, Polygon, Rect, Ring, Segment};
pub use stj_index::{mbr_join, mbr_join_parallel, MbrRelation, TileTask, Tiling};
pub use stj_raster::{AprilApprox, Grid, IntervalList};

/// Convenience glob-import module: `use stjoin::prelude::*;`.
pub mod prelude {
    pub use stj_core::{
        find_relation, find_relation_april, find_relation_op2, find_relation_st2, relate_p,
        AdaptiveMode, Dataset, DatasetArena, Determination, ExecStrategy, FindOutcome, JoinMethod,
        Link, ObjectRef, PipelineStats, SpatialObject, TopologyJoin,
    };
    pub use stj_de9im::{relate, De9Im, TopoRelation};
    pub use stj_geom::{MultiPolygon, Point, Polygon, Rect, Ring, Segment};
    pub use stj_index::{mbr_join, mbr_join_parallel, MbrRelation};
    pub use stj_raster::{AprilApprox, Grid, IntervalList};
}
