#!/usr/bin/env python3
"""Embed the recorded repro_all output into EXPERIMENTS.md's appendix."""

import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
exp = root / "EXPERIMENTS.md"
out = root / "repro_output.txt"

text = exp.read_text()
run = out.read_text()
# Drop cargo build noise before the report header.
marker = "# Scalable Spatial Topology Joins"
if marker in run:
    run = run[run.index(marker):]

placeholder_start = text.index("```text\n(see repro_output.txt")
placeholder_end = text.index("```", placeholder_start + 7) + 3
text = text[:placeholder_start] + "```text\n" + run.rstrip() + "\n```" + text[placeholder_end:]
exp.write_text(text)
print(f"embedded {len(run)} bytes of run output into EXPERIMENTS.md")
