//! Converse symmetry across every join method: for any pair `(r, s)`
//! and any relation `p`, `p(r, s)` holds iff `p.converse()(s, r)` does,
//! and the most specific relation of the swapped pair is the converse
//! of the original. Pairs are drawn per target relation so that all
//! eight relations — including the asymmetric `Inside`/`Contains` and
//! `CoveredBy`/`Covers` pairs — are exercised, not just whatever a
//! uniform sampler happens to produce.

use proptest::prelude::*;
use stjoin::datagen::pair_with_relation;
use stjoin::prelude::*;

const ALL_RELATIONS: [TopoRelation; 8] = [
    TopoRelation::Disjoint,
    TopoRelation::Intersects,
    TopoRelation::Meets,
    TopoRelation::Equals,
    TopoRelation::Inside,
    TopoRelation::Contains,
    TopoRelation::CoveredBy,
    TopoRelation::Covers,
];

fn grid() -> Grid {
    Grid::new(Rect::from_coords(-200.0, -200.0, 1200.0, 1200.0), 10)
}

type Method = fn(ObjectRef<'_>, ObjectRef<'_>) -> FindOutcome;

/// Asserts converse symmetry for one preprocessed pair, for every join
/// method and every `relate_p` predicate.
fn assert_converse(r: &SpatialObject, s: &SpatialObject, ctx: &str) {
    let methods: [(&str, Method); 4] = [
        ("P+C", find_relation),
        ("ST2", find_relation_st2),
        ("OP2", find_relation_op2),
        ("APRIL", find_relation_april),
    ];
    for (name, method) in methods {
        let fwd = method(r.view(), s.view()).relation;
        let rev = method(s.view(), r.view()).relation;
        assert_eq!(rev, fwd.converse(), "{name} {ctx}: {fwd:?} vs {rev:?}");
        // converse is an involution, so the reverse direction follows.
        assert_eq!(fwd, rev.converse(), "{name} {ctx} (back)");
    }
    for p in ALL_RELATIONS {
        let fwd = relate_p(r.view(), s.view(), p).holds;
        let rev = relate_p(s.view(), r.view(), p.converse()).holds;
        assert_eq!(fwd, rev, "relate_p({p:?}) {ctx}");
    }
}

#[test]
fn converse_holds_for_all_target_relations() {
    let grid = grid();
    for rel in ALL_RELATIONS {
        for seed in 0..12u64 {
            let complexity = 8 + (seed as usize % 5) * 24;
            let (a, b) = pair_with_relation(rel, complexity, 0x5EED_0000 + seed);
            let r = SpatialObject::build(a, &grid);
            let s = SpatialObject::build(b, &grid);
            assert_converse(&r, &s, &format!("target {rel:?} seed {seed}"));
        }
    }
}

#[test]
fn converse_holds_on_adversarial_pairs() {
    let grid = grid();
    for index in 0..220u64 {
        let pair = stjoin::datagen::adversarial_pair(0xC0_FFEE, index);
        let r = SpatialObject::build(pair.a, &grid);
        let s = SpatialObject::build(pair.b, &grid);
        assert_converse(&r, &s, &format!("adversarial {} #{index}", pair.category));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random (relation, complexity, seed) draws: the swapped pair's
    /// most specific relation is always the converse of the original's.
    #[test]
    fn converse_is_involutive_on_random_pairs(
        rel_idx in 0usize..8,
        complexity in 8usize..96,
        seed in any::<u64>(),
    ) {
        let grid = grid();
        let (a, b) = pair_with_relation(ALL_RELATIONS[rel_idx], complexity, seed);
        let r = SpatialObject::build(a, &grid);
        let s = SpatialObject::build(b, &grid);
        let fwd = find_relation(r.view(), s.view()).relation;
        let rev = find_relation(s.view(), r.view()).relation;
        prop_assert_eq!(rev, fwd.converse());
        // The DE-9IM oracle agrees with itself under transposition.
        let fwd_truth = TopoRelation::most_specific(&relate(&r.polygon, &s.polygon));
        let rev_truth = TopoRelation::most_specific(&relate(&s.polygon, &r.polygon));
        prop_assert_eq!(rev_truth, fwd_truth.converse());
    }
}
