//! Cross-crate properties of the DE-9IM engine: transpose symmetry,
//! relation/converse duality, and agreement with point-sampling evidence.

use proptest::prelude::*;
use stjoin::datagen::{star_polygon, StarParams};
use stjoin::geom::polygon::Location;
use stjoin::prelude::*;

fn star(seed: u64, n: usize, cx: f64, cy: f64, radius: f64) -> Polygon {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    star_polygon(
        &mut rng,
        &StarParams {
            center: Point::new(cx, cy),
            avg_radius: radius,
            irregularity: 0.5,
            spikiness: 0.35,
            num_vertices: n,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// relate(s, r) is the transpose of relate(r, s), and the most
    /// specific relation of the transpose is the converse.
    #[test]
    fn transpose_and_converse(
        s1 in 0u64..100_000,
        s2 in 0u64..100_000,
        dx in -40.0..40.0f64,
        dy in -40.0..40.0f64,
        scale in 0.2..2.0f64,
    ) {
        let a = star(s1, 20, 50.0, 50.0, 20.0);
        let b = star(s2, 28, 50.0 + dx, 50.0 + dy, 20.0 * scale);
        let m_ab = relate(&a, &b);
        let m_ba = relate(&b, &a);
        prop_assert_eq!(m_ab.transposed(), m_ba, "transpose violated");
        prop_assert_eq!(
            TopoRelation::most_specific(&m_ab).converse(),
            TopoRelation::most_specific(&m_ba)
        );
    }

    /// Point-sampling evidence: any sampled point classification must be
    /// consistent with the computed matrix (sampling can only *witness*
    /// intersections, never refute the matrix's F cells for cells it
    /// cannot witness — so we check the witness direction).
    #[test]
    fn sampled_witnesses_are_reflected(
        s1 in 0u64..100_000,
        s2 in 0u64..100_000,
        dx in -30.0..30.0f64,
        dy in -30.0..30.0f64,
    ) {
        use stjoin::de9im::Part;
        let a = star(s1, 16, 50.0, 50.0, 18.0);
        let b = star(s2, 16, 50.0 + dx, 50.0 + dy, 18.0);
        let m = relate(&a, &b);

        // Sample a grid of points; each witnesses one matrix cell.
        for i in 0..20 {
            for j in 0..20 {
                let p = Point::new(10.0 + i as f64 * 4.0, 10.0 + j as f64 * 4.0);
                let part_a = match a.locate(p) {
                    Location::Inside => Part::Interior,
                    Location::Boundary => Part::Boundary,
                    Location::Outside => Part::Exterior,
                };
                let part_b = match b.locate(p) {
                    Location::Inside => Part::Interior,
                    Location::Boundary => Part::Boundary,
                    Location::Outside => Part::Exterior,
                };
                prop_assert!(
                    m.get(part_a, part_b),
                    "point {p:?} witnesses ({part_a:?},{part_b:?}) but matrix {m:?} says F"
                );
            }
        }
    }

    /// Exactly one of the paper's "definite" relations holds as most
    /// specific, and it implies every satisfied generalization.
    #[test]
    fn most_specific_is_consistent(
        s1 in 0u64..100_000,
        s2 in 0u64..100_000,
        dx in -35.0..35.0f64,
        scale in 0.3..1.5f64,
    ) {
        let a = star(s1, 24, 50.0, 50.0, 20.0);
        let b = star(s2, 24, 50.0 + dx, 50.0, 20.0 * scale);
        let m = relate(&a, &b);
        let best = TopoRelation::most_specific(&m);
        prop_assert!(best.holds(&m));
        for rel in TopoRelation::SPECIFIC_TO_GENERAL {
            if rel.holds(&m) {
                prop_assert!(
                    best == rel || best.implies(rel),
                    "most specific {best:?} does not imply satisfied {rel:?} ({m:?})"
                );
            }
        }
        // Disjoint and intersects are mutually exclusive and exhaustive.
        prop_assert_ne!(
            TopoRelation::Disjoint.holds(&m),
            TopoRelation::Intersects.holds(&m)
        );
    }
}

#[test]
fn prepared_objects_give_identical_matrices() {
    use stjoin::de9im::{relate_prepared, Prepared};
    let a = star(1, 30, 50.0, 50.0, 25.0);
    let pa = Prepared::new(&a);
    for seed in 0..20u64 {
        let b = star(seed, 20, 45.0 + seed as f64, 50.0, 15.0);
        let pb = Prepared::new(&b);
        assert_eq!(relate_prepared(&pa, &pb), relate(&a, &b), "seed {seed}");
    }
}
