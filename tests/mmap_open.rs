//! Allocation guard for the mapped open path (PR 8).
//!
//! `open_arena` on an STJD v2 file must be a true O(1) open: sniff the
//! header, `mmap` the file, and point the arena's columns into the
//! page-cache-backed words — **zero** full-file copies. This test pins
//! that property with a byte-counting global allocator: opening a
//! multi-megabyte v2 file may allocate only small metadata (the name
//! string, the span table, the mapping handle), never a buffer in the
//! file's size class.
//!
//! On targets without the mapped path (non-unix, or misaligned
//! fallback builds) the test still verifies that the fallback open
//! produces a query-identical arena — it just skips the byte bound.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use stjoin::core::{Dataset, TopologyJoin};
use stjoin::geom::Rect;
use stjoin::raster::Grid;
use stjoin::store::{open_arena, open_arena_from_bytes, write_arena_v2};

struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn mapped_open_performs_no_full_file_copy() {
    // A few thousand buildings: the v2 image lands well into the
    // megabytes, far above any metadata allocation.
    let polys = stjoin::datagen::generate(stjoin::datagen::DatasetId::OBE, 0.5);
    let mut extent = Rect::empty();
    for p in &polys {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 10);
    let ds = Dataset::build_parallel("obe", polys, &grid, 4);
    let arena = ds.to_arena();

    let path = std::env::temp_dir().join(format!("stj-mmap-open-{}.stjd", std::process::id()));
    let mut bytes = Vec::new();
    write_arena_v2(&mut bytes, &arena, &grid).expect("v2 write");
    let file_len = bytes.len() as u64;
    assert!(file_len > 1 << 20, "dataset too small to be probative");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(&bytes))
        .expect("write v2 file");

    let before = ALLOC_BYTES.load(Relaxed);
    let (opened, ogrid) = open_arena(&path).expect("open v2 file");
    let open_bytes = ALLOC_BYTES.load(Relaxed) - before;
    let _ = std::fs::remove_file(&path);

    assert_eq!(ogrid, grid);
    assert_eq!(opened.len(), arena.len());
    if opened.backing_kind() == "mapped" {
        // The open may allocate metadata but never a buffer in the
        // file's size class; one-tenth leaves headroom for allocator
        // slop while still failing on any full- or half-file copy.
        assert!(
            open_bytes < file_len / 10,
            "mapped open of a {file_len}-byte file allocated {open_bytes} bytes"
        );
    } else {
        // No mapped path on this target: the fallback necessarily
        // buffers the file, so only functional checks apply.
        eprintln!(
            "mapped open unsupported here (backing {})",
            opened.backing_kind()
        );
    }

    // Whatever the backing, the opened arena must answer like the
    // in-memory image.
    let (baseline, _g) = open_arena_from_bytes(&bytes).expect("bytes open");
    let join = TopologyJoin::new().threads(1);
    let a = join.run(&opened, &opened);
    let b = join.run(&baseline, &baseline);
    assert_eq!(a.links, b.links);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.candidates, b.candidates);
}
