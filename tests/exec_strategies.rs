//! Differential property suite for the two `TopologyJoin` executors:
//! over seeded datasets spanning several tiling resolutions, skew
//! shapes, and edge cases, the streaming fused executor must produce
//! exactly the materialized executor's links (up to order), its
//! `PipelineStats`, its candidate count, and its profile totals — at
//! every thread count, in find-relation and predicate mode.

use stjoin::obs::Stage;
use stjoin::prelude::*;

/// Deterministic xorshift64* in [0, 1).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// `n` axis-aligned rectangles scattered over `span` with the given max
/// edge length.
fn random_rect_polys(n: usize, seed: u64, span: f64, size: f64) -> Vec<Polygon> {
    let mut rng = Rng(seed.max(1));
    (0..n)
        .map(|_| {
            let x = rng.next() * span;
            let y = rng.next() * span;
            let w = rng.next().mul_add(size, 1.0);
            let h = rng.next().mul_add(size, 1.0);
            Polygon::rect(Rect::from_coords(x, y, x + w, y + h))
        })
        .collect()
}

fn arena(name: &str, polys: Vec<Polygon>, extent: Rect) -> DatasetArena {
    let grid = Grid::new(extent, 10);
    Dataset::build(name, polys, &grid).to_arena()
}

fn sorted_links(mut links: Vec<Link>) -> Vec<Link> {
    links.sort_by_key(|l| (l.r, l.s));
    links
}

/// Runs both executors over the configuration across thread counts
/// (including `0` = auto-detect) and asserts full equivalence: links,
/// stats, candidates, and exact profile totals.
fn assert_equivalent(label: &str, left: &DatasetArena, right: &DatasetArena, join: TopologyJoin) {
    let baseline = join
        .strategy(ExecStrategy::Materialized)
        .threads(1)
        .profiled(true)
        .run(left, right);
    let base_links = sorted_links(baseline.links.clone());
    let base_profile = baseline.profile.as_ref().expect("profiled");
    for strategy in [ExecStrategy::Streaming, ExecStrategy::Materialized] {
        for threads in [0, 1, 2, 4, 8] {
            let got = join
                .strategy(strategy)
                .threads(threads)
                .profiled(true)
                .run(left, right);
            let tag = format!("{label}: {strategy:?} x{threads}");
            assert_eq!(got.candidates, baseline.candidates, "{tag}: candidates");
            assert_eq!(got.stats, baseline.stats, "{tag}: stats");
            assert_eq!(sorted_links(got.links.clone()), base_links, "{tag}: links");
            let profile = got.profile.as_ref().expect("profiled");
            assert_eq!(
                profile.pairs_decided(),
                base_profile.pairs_decided(),
                "{tag}: pairs decided"
            );
            for stage in Stage::ALL {
                assert_eq!(
                    profile.stage(stage).decided,
                    base_profile.stage(stage).decided,
                    "{tag}: {} decided",
                    stage.name()
                );
                assert_eq!(
                    profile.stage(stage).latency.count(),
                    base_profile.stage(stage).latency.count(),
                    "{tag}: {} latency count",
                    stage.name()
                );
            }
            for (c, (got_c, base_c)) in profile
                .classes
                .iter()
                .zip(&base_profile.classes)
                .enumerate()
            {
                assert_eq!(got_c.pairs, base_c.pairs, "{tag}: class {c} pairs");
            }
        }
    }
}

#[test]
fn random_datasets_across_tiling_resolutions() {
    // n drives the tile grid resolution k = ceil(sqrt(n / 32)): these
    // sizes produce three different tilings.
    for (n, seed) in [(40usize, 11u64), (300, 12), (1100, 13)] {
        let span = 1000.0;
        let extent = Rect::from_coords(-5.0, -5.0, span + 40.0, span + 40.0);
        let l = arena("L", random_rect_polys(n, seed, span, 28.0), extent);
        let r = arena("R", random_rect_polys(n, seed + 100, span, 28.0), extent);
        assert_equivalent(&format!("random n={n}"), &l, &r, TopologyJoin::new());
    }
}

#[test]
fn skewed_hot_spot_splits_without_divergence() {
    // A dense city block — 150 × 150 candidates in one tile, beyond the
    // skew-split threshold — plus a sparse countryside.
    let extent = Rect::from_coords(0.0, 0.0, 1100.0, 1100.0);
    let mut l = random_rect_polys(150, 21, 9.0, 4.0);
    l.extend(random_rect_polys(100, 22, 1000.0, 30.0));
    let mut r = random_rect_polys(150, 23, 9.0, 4.0);
    r.extend(random_rect_polys(100, 24, 1000.0, 30.0));
    let l = arena("L", l, extent);
    let r = arena("R", r, extent);
    assert_equivalent("skewed", &l, &r, TopologyJoin::new());
}

#[test]
fn empty_datasets() {
    let extent = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
    let empty = arena("E", vec![], extent);
    let some = arena("S", random_rect_polys(25, 31, 90.0, 10.0), extent);
    assert_equivalent("empty x empty", &empty, &empty, TopologyJoin::new());
    assert_equivalent("empty x some", &empty, &some, TopologyJoin::new());
    assert_equivalent("some x empty", &some, &empty, TopologyJoin::new());
}

#[test]
fn single_giant_object_replicated_across_all_tiles() {
    let extent = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let giant = arena(
        "G",
        vec![Polygon::rect(Rect::from_coords(1.0, 1.0, 999.0, 999.0))],
        extent,
    );
    let many = arena("M", random_rect_polys(400, 41, 980.0, 12.0), extent);
    assert_equivalent("giant x many", &giant, &many, TopologyJoin::new());
    assert_equivalent("many x giant", &many, &giant, TopologyJoin::new());
}

#[test]
fn identical_point_like_mbrs() {
    // Dozens of identical tiny squares: every MBR ties with every other
    // on all four sides, the regime where reference-point dedup and
    // xmin-sorted event partitioning are easiest to get wrong.
    let extent = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
    let sq = Polygon::rect(Rect::from_coords(50.0, 50.0, 50.5, 50.5));
    let l = arena("L", vec![sq.clone(); 40], extent);
    let r = arena("R", vec![sq; 30], extent);
    assert_equivalent("identical mbrs", &l, &r, TopologyJoin::new());
}

#[test]
fn all_methods_and_predicate_mode_agree_across_strategies() {
    let extent = Rect::from_coords(0.0, 0.0, 520.0, 520.0);
    let l = arena("L", random_rect_polys(220, 51, 500.0, 24.0), extent);
    let r = arena("R", random_rect_polys(220, 52, 500.0, 24.0), extent);
    for method in [
        JoinMethod::PC,
        JoinMethod::St2,
        JoinMethod::Op2,
        JoinMethod::April,
    ] {
        assert_equivalent(
            &format!("{method:?}"),
            &l,
            &r,
            TopologyJoin::new().method(method),
        );
    }
    for predicate in [
        TopoRelation::Intersects,
        TopoRelation::Meets,
        TopoRelation::Contains,
    ] {
        assert_equivalent(
            &format!("predicate {predicate:?}"),
            &l,
            &r,
            TopologyJoin::new().predicate(predicate),
        );
    }
}
