//! Allocation-regression guard for the refine path (PR 7).
//!
//! The flat thread-scaling bug was caused by per-call heap churn in
//! DE-9IM refinement: every `relate()` allocated (and freed) its
//! noding buffers, sweep event lists, sub-edge vectors and
//! intersection lists, serializing all workers on the allocator. The
//! fix threads a reusable [`RelateScratch`] arena through the whole
//! path. This test pins the property that makes the fix stick: after
//! a warm-up pass has grown every scratch buffer to its high-water
//! mark, re-running the full adversarial corpus through
//! `relate_with` performs **zero** allocations — on one thread and on
//! four concurrent threads (each with its own arena).
//!
//! The corpus is `stj_datagen::adversarial` — the same constructions
//! the differential check harness uses — so the guard covers shared
//! edges, vertex contact, hole boundaries, collinear slivers and the
//! degenerate MBR ties, not just friendly rectangles.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Barrier;

use stjoin::datagen::adversarial::adversarial_pair;
use stjoin::de9im::{relate_with, RelateScratch};
use stjoin::Polygon;

/// Counts every allocator entry point process-wide. `realloc` and
/// `alloc_zeroed` count too: a growing `Vec` re-entering the
/// allocator is exactly the churn this test exists to catch.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Pairs per corpus: several full rotations of the 11 adversarial
/// categories.
const CORPUS: u64 = 66;

fn corpus(seed: u64) -> Vec<(Polygon, Polygon)> {
    (0..CORPUS)
        .map(|i| {
            let p = adversarial_pair(seed, i);
            (p.a, p.b)
        })
        .collect()
}

/// Runs every pair through refinement, both orientations.
fn run_corpus(pairs: &[(Polygon, Polygon)], scratch: &mut RelateScratch) -> u64 {
    let mut checksum = 0u64;
    for (a, b) in pairs {
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(relate_with(a, b, scratch).bits() as u64);
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(relate_with(b, a, scratch).bits() as u64);
    }
    checksum
}

#[test]
fn steady_state_relate_is_allocation_free_single_thread() {
    let pairs = corpus(0xA110C);
    let mut scratch = RelateScratch::default();

    // Warm-up: grow every scratch buffer to the corpus high-water mark.
    let expect = run_corpus(&pairs, &mut scratch);

    let before = ALLOC_CALLS.load(Relaxed);
    let got = run_corpus(&pairs, &mut scratch);
    let after = ALLOC_CALLS.load(Relaxed);

    assert_eq!(got, expect, "scratch reuse changed relate results");
    assert_eq!(
        after - before,
        0,
        "steady-state refinement allocated {} times over {} pairs",
        after - before,
        pairs.len()
    );
}

#[test]
fn steady_state_relate_is_allocation_free_four_threads() {
    const THREADS: usize = 4;
    let pairs = corpus(0xA110C4);

    // Three rendezvous points bracket the measured window: after all
    // warm-ups, around the steady phase. Only `run_corpus` executes
    // between `start` and `done`, so any count observed there is real
    // refine-path churn. (Barrier waits are futex-based and do not
    // allocate.)
    let warmed = Barrier::new(THREADS + 1);
    let start = Barrier::new(THREADS + 1);
    let done = Barrier::new(THREADS + 1);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                // Per-worker arena, exactly like the streaming executor
                // and the serve pool.
                let mut scratch = RelateScratch::default();
                let expect = run_corpus(&pairs, &mut scratch);
                warmed.wait();
                start.wait();
                let got = run_corpus(&pairs, &mut scratch);
                done.wait();
                assert_eq!(got, expect, "scratch reuse changed relate results");
            });
        }

        warmed.wait();
        let before = ALLOC_CALLS.load(Relaxed);
        start.wait();
        done.wait();
        let after = ALLOC_CALLS.load(Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state refinement allocated {} times across {THREADS} threads",
            after - before
        );
    });
}
