//! Observability invariants of the join executor: a profiled
//! multi-threaded run merges per-worker recorders into exactly the
//! aggregate a sequential run produces — same `PipelineStats`, same
//! per-stage decision counts and histogram totals, same per-MBR-class
//! breakdown. (Latency *values* differ run to run; everything counted
//! must not.)

use stjoin::core::{JoinMethod, TopologyJoin};
use stjoin::obs::{JoinProfile, Stage};
use stjoin::prelude::*;

fn datasets() -> (DatasetArena, DatasetArena) {
    let grid = Grid::new(Rect::from_coords(-50.0, -50.0, 1100.0, 1100.0), 10);
    let a = stjoin::datagen::generate(stjoin::datagen::DatasetId::OLE, 0.05);
    let b = stjoin::datagen::generate(stjoin::datagen::DatasetId::OPE, 0.05);
    (
        Dataset::build("lakes", a, &grid).to_arena(),
        Dataset::build("parks", b, &grid).to_arena(),
    )
}

fn assert_profiles_count_equal(seq: &JoinProfile, par: &JoinProfile, ctx: &str) {
    for stage in Stage::ALL {
        assert_eq!(
            seq.stage(stage).decided,
            par.stage(stage).decided,
            "{ctx}: decided mismatch at {stage:?}"
        );
        assert_eq!(
            seq.stage(stage).latency.count(),
            par.stage(stage).latency.count(),
            "{ctx}: histogram count mismatch at {stage:?}"
        );
    }
    assert_eq!(seq.classes, par.classes, "{ctx}: MBR class breakdown");
    assert_eq!(seq.pairs_decided(), par.pairs_decided(), "{ctx}");
}

#[test]
fn profiled_parallel_join_merges_exactly() {
    let (l, r) = datasets();
    let seq = TopologyJoin::new().profiled(true).threads(1).run(&l, &r);
    let seq_profile = seq.profile.expect("sequential profile");
    assert!(seq.candidates > 0, "scenario must produce candidates");

    for threads in [2, 3, 8] {
        let par = TopologyJoin::new()
            .profiled(true)
            .threads(threads)
            .run(&l, &r);
        assert_eq!(seq.stats, par.stats, "{threads} threads");
        assert_eq!(seq.links.len(), par.links.len(), "{threads} threads");
        let par_profile = par.profile.expect("parallel profile");
        assert_profiles_count_equal(&seq_profile, &par_profile, &format!("{threads} threads"));
    }
}

#[test]
fn profile_totals_are_consistent_with_stats() {
    let (l, r) = datasets();
    let out = TopologyJoin::new().profiled(true).threads(4).run(&l, &r);
    let profile = out.profile.expect("profile");

    // Stage decision counts are exactly the PipelineStats tallies.
    assert_eq!(profile.stage(Stage::MbrClassify).decided, out.stats.by_mbr);
    assert_eq!(
        profile.stage(Stage::IntermediateFilter).decided,
        out.stats.by_intermediate
    );
    assert_eq!(profile.stage(Stage::Refinement).decided, out.stats.refined);
    assert_eq!(profile.pairs_decided(), out.stats.pairs);

    // Every candidate is MBR-classified exactly once; later stages see
    // exactly the pairs earlier stages passed through.
    assert_eq!(
        profile.stage(Stage::MbrClassify).latency.count(),
        out.candidates
    );
    assert_eq!(
        profile.stage(Stage::IntermediateFilter).latency.count(),
        out.candidates - out.stats.by_mbr
    );
    assert_eq!(
        profile.stage(Stage::Refinement).latency.count(),
        out.stats.refined
    );

    // The class breakdown partitions the candidates; refinement counts
    // match the refined tally.
    let class_pairs: u64 = profile.classes.iter().map(|c| c.pairs).sum();
    let class_refined: u64 = profile.classes.iter().map(|c| c.refined).sum();
    assert_eq!(class_pairs, out.candidates);
    assert_eq!(class_refined, out.stats.refined);
}

#[test]
fn profiled_and_unprofiled_runs_agree() {
    let (l, r) = datasets();
    for threads in [1, 4] {
        let plain = TopologyJoin::new().threads(threads).run(&l, &r);
        let profiled = TopologyJoin::new()
            .profiled(true)
            .threads(threads)
            .run(&l, &r);
        assert_eq!(plain.stats, profiled.stats);
        let mut a = plain.links.clone();
        let mut b = profiled.links.clone();
        a.sort_by_key(|lk| (lk.r, lk.s));
        b.sort_by_key(|lk| (lk.r, lk.s));
        assert_eq!(a, b);
        assert!(plain.profile.is_none());
        assert!(profiled.profile.is_some());
    }
}

#[test]
fn predicate_mode_profiles_consistently() {
    let (l, r) = datasets();
    let seq = TopologyJoin::new()
        .predicate(TopoRelation::Inside)
        .profiled(true)
        .threads(1)
        .run(&l, &r);
    let par = TopologyJoin::new()
        .predicate(TopoRelation::Inside)
        .profiled(true)
        .threads(4)
        .run(&l, &r);
    assert_eq!(seq.stats, par.stats);
    assert_profiles_count_equal(
        &seq.profile.expect("seq"),
        &par.profile.expect("par"),
        "predicate mode",
    );
}

#[test]
fn baseline_methods_profile_whole_call_latency() {
    let (l, r) = datasets();
    let out = TopologyJoin::new()
        .method(JoinMethod::St2)
        .profiled(true)
        .run(&l, &r);
    let profile = out.profile.expect("profile");
    // Baselines time the whole per-pair call attributed to the deciding
    // stage: decided == histogram count per stage, no class breakdown.
    for stage in Stage::ALL {
        assert_eq!(
            profile.stage(stage).decided,
            profile.stage(stage).latency.count(),
            "{stage:?}"
        );
    }
    assert_eq!(profile.pairs_decided(), out.stats.pairs);
    assert!(profile.classes.iter().all(|c| c.pairs == 0));
}
