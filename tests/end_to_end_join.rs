//! End-to-end topology joins over generated scenario datasets: all four
//! methods must produce identical relation results pair-by-pair, and the
//! filter-effectiveness ordering the paper reports (P+C refines ≤ APRIL
//! refines ≤ OP2/ST2 refine) must hold.

use std::collections::BTreeMap;
use stjoin::datagen::{generate_combo, ComboId};
use stjoin::prelude::*;

/// Builds both datasets of a combo at a tiny scale into columnar arenas
/// and returns them plus the candidate pairs.
fn setup(combo: ComboId, scale: f64) -> (DatasetArena, DatasetArena, Vec<(u32, u32)>) {
    let (r_polys, s_polys) = generate_combo(combo, scale);
    let mut extent = Rect::empty();
    for p in r_polys.iter().chain(&s_polys) {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 12);
    let r = Dataset::build("R", r_polys, &grid).to_arena();
    let s = Dataset::build("S", s_polys, &grid).to_arena();
    let pairs = mbr_join(r.mbrs(), s.mbrs());
    (r, s, pairs)
}

fn run_combo(combo: ComboId, scale: f64, expect_if_decisions: bool) {
    let (r, s, pairs) = setup(combo, scale);
    assert!(!pairs.is_empty(), "{}: no candidate pairs", combo.name());

    let mut pc = PipelineStats::default();
    let mut st2 = PipelineStats::default();
    let mut op2 = PipelineStats::default();
    let mut april = PipelineStats::default();
    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();

    for &(i, j) in &pairs {
        let (ro, so) = (r.object(i as usize), s.object(j as usize));
        let a = find_relation(ro, so);
        let b = find_relation_st2(ro, so);
        let c = find_relation_op2(ro, so);
        let d = find_relation_april(ro, so);
        assert_eq!(a.relation, b.relation, "{} pair ({i},{j})", combo.name());
        assert_eq!(a.relation, c.relation, "{} pair ({i},{j})", combo.name());
        assert_eq!(a.relation, d.relation, "{} pair ({i},{j})", combo.name());
        pc.record(&a);
        st2.record(&b);
        op2.record(&c);
        april.record(&d);
        *histogram.entry(a.relation.to_string()).or_default() += 1;
    }

    // Filter-effectiveness ordering (Figure 7(b) shape).
    assert!(
        pc.refined <= april.refined,
        "{}: P+C refined {} > APRIL refined {}",
        combo.name(),
        pc.refined,
        april.refined
    );
    assert!(
        april.refined <= st2.refined,
        "{}: APRIL refined {} > ST2 refined {}",
        combo.name(),
        april.refined,
        st2.refined
    );
    assert!(
        op2.refined <= st2.refined,
        "{}: OP2 refined more than ST2",
        combo.name()
    );
    // The P+C pipeline must actually be doing intermediate-filter work on
    // scenario data — except in pure coverage scenarios (TC-TZ), where
    // every candidate pair shares boundary cells and legitimately needs
    // refinement or is decided by the MBR filter.
    if expect_if_decisions {
        assert!(
            pc.by_intermediate > 0,
            "{}: intermediate filters never fired",
            combo.name()
        );
    }
}

#[test]
fn lakes_parks_combo() {
    run_combo(ComboId::OleOpe, 0.012, true);
}

#[test]
fn buildings_parks_combo() {
    run_combo(ComboId::ObeOpe, 0.006, true);
}

#[test]
fn landmarks_water_combo() {
    run_combo(ComboId::TlTw, 0.02, true);
}

#[test]
fn counties_zipcodes_combo() {
    run_combo(ComboId::TcTz, 0.03, false);
}

#[test]
fn counties_zipcodes_have_rich_relation_mix() {
    // The nested coverage scenario must produce covered-by relations (zip
    // inside county) and meets (adjacent cells), not just intersects.
    let (r, s, pairs) = setup(ComboId::TcTz, 0.03);
    let mut covered = 0u64;
    let mut meets = 0u64;
    for &(i, j) in &pairs {
        match find_relation(r.object(i as usize), s.object(j as usize)).relation {
            TopoRelation::Covers | TopoRelation::Contains => covered += 1,
            TopoRelation::Meets => meets += 1,
            _ => {}
        }
    }
    assert!(covered > 0, "no county covers a zip code");
    assert!(meets > 0, "no county meets a zip code");
}

#[test]
fn relation_histogram_is_diverse_on_lakes_parks() {
    let (r, s, pairs) = setup(ComboId::OleOpe, 0.04);
    let mut seen = std::collections::BTreeSet::new();
    for &(i, j) in &pairs {
        seen.insert(find_relation(r.object(i as usize), s.object(j as usize)).relation);
    }
    // Expect at least intersects, one containment flavour, and a third
    // distinct relation (the exact mix depends on the sampled scale).
    assert!(seen.contains(&TopoRelation::Intersects), "{seen:?}");
    assert!(
        seen.contains(&TopoRelation::Inside) || seen.contains(&TopoRelation::CoveredBy),
        "{seen:?}"
    );
    assert!(seen.len() >= 3, "{seen:?}");
}
