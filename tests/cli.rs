//! End-to-end test of the `stj` command-line binary: generate →
//! preprocess → join → N-Triples, plus the `relate` one-shot.

use std::path::PathBuf;
use std::process::Command;

fn stj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stj"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stj-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn relate_command() {
    let out = stj()
        .args([
            "relate",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
            "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))",
        ])
        .output()
        .expect("run stj");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("DE-9IM:   TTTFFTFFT"), "{text}");
    assert!(text.contains("relation: contains"), "{text}");
}

#[test]
fn relate_rejects_bad_wkt() {
    let out = stj()
        .args([
            "relate",
            "POLYGON ((0 0))",
            "POLYGON ((0 0, 1 0, 1 1, 0 0))",
        ])
        .output()
        .expect("run stj");
    assert!(!out.status.success());
}

#[test]
fn full_pipeline_via_cli() {
    let dir = tempdir("pipeline");
    let lakes_wkt = dir.join("lakes.wkt");
    let parks_wkt = dir.join("parks.wkt");
    let lakes_bin = dir.join("lakes.stjd");
    let parks_bin = dir.join("parks.stjd");
    let links = dir.join("links.nt");

    for (ds, path) in [("OLE", &lakes_wkt), ("OPE", &parks_wkt)] {
        let out = stj()
            .args(["generate", ds, "0.003"])
            .arg(path)
            .output()
            .expect("generate");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    for (wkt, bin) in [(&lakes_wkt, &lakes_bin), (&parks_wkt, &parks_bin)] {
        let out = stj()
            .arg("preprocess")
            .arg(wkt)
            .arg(bin)
            .args(["--order", "12", "--extent", "0", "0", "1000", "1000"])
            .output()
            .expect("preprocess");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let stats_json = dir.join("report.json");
    let out = stj()
        .arg("join")
        .arg(&lakes_bin)
        .arg(&parks_bin)
        .arg("--ntriples")
        .arg(&links)
        .arg("--stats-json")
        .arg(&stats_json)
        .output()
        .expect("join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Join statistics go to stderr; stdout stays pipeable (empty here).
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("candidates"), "{text}");
    assert!(String::from_utf8(out.stdout).unwrap().is_empty());

    // The --stats-json report has the stj-join-report/v1 shape.
    let report = std::fs::read_to_string(&stats_json).unwrap();
    assert!(report.trim_start().starts_with('{'), "{report}");
    for key in [
        "\"schema\": \"stj-join-report/v1\"",
        "\"candidates\"",
        "\"wall_ns\"",
        "\"stats\"",
        "\"relations\"",
        "\"profile\"",
        "\"mbr_classify\"",
        "\"intermediate_filter\"",
        "\"refinement\"",
        "\"p99_ns\"",
        "\"mbr_classes\"",
    ] {
        assert!(report.contains(key), "missing {key} in {report}");
    }

    let nt = std::fs::read_to_string(&links).unwrap();
    assert!(nt.lines().count() > 0);
    for line in nt.lines() {
        assert!(line.starts_with("<urn:stj:"), "{line}");
        assert!(line.contains("geosparql#sf"), "{line}");
        assert!(line.ends_with(" ."), "{line}");
    }

    // Predicate mode agrees with the general join's histogram.
    let out = stj()
        .arg("join")
        .arg(&lakes_bin)
        .arg(&parks_bin)
        .args(["--predicate", "inside"])
        .output()
        .expect("predicate join");
    assert!(out.status.success());

    // --quiet silences the summary entirely.
    let out = stj()
        .arg("join")
        .arg(&lakes_bin)
        .arg(&parks_bin)
        .arg("--quiet")
        .output()
        .expect("quiet join");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().is_empty());
    assert!(String::from_utf8(out.stderr).unwrap().is_empty());

    // --progress emits at least a final heartbeat line on stderr.
    let out = stj()
        .arg("join")
        .arg(&lakes_bin)
        .arg(&parks_bin)
        .args(["--quiet", "--progress"])
        .output()
        .expect("progress join");
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("progress:"), "{err}");
    assert!(err.contains("pairs/sec"), "{err}");

    // Mismatched grids are refused.
    let other_bin = dir.join("other.stjd");
    let out = stj()
        .arg("preprocess")
        .arg(&lakes_wkt)
        .arg(&other_bin)
        .args(["--order", "10", "--extent", "0", "0", "1000", "1000"])
        .output()
        .expect("preprocess other");
    assert!(out.status.success());
    let out = stj()
        .arg("join")
        .arg(&other_bin)
        .arg(&parks_bin)
        .output()
        .expect("mismatched join");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("grid mismatch"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_out_of_core_pipeline() {
    let dir = tempdir("sharded");
    let wkt = dir.join("obe.wkt");
    let single = dir.join("obe.stjd");
    let manifest = dir.join("obe.stjm");

    let out = stj()
        .args(["generate", "OBE", "0.01"])
        .arg(&wkt)
        .output()
        .expect("generate");
    assert!(out.status.success());
    for (path, extra) in [(&single, &[][..]), (&manifest, &["--shards", "3"][..])] {
        let out = stj()
            .arg("preprocess")
            .arg(&wkt)
            .arg(path)
            .args(["--order", "10", "--name", "obe"])
            .args(extra)
            .output()
            .expect("preprocess");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // info understands the manifest.
    let out = stj().arg("info").arg(&manifest).output().expect("info");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("STJM shard manifest"), "{text}");
    assert!(text.contains("3 shard(s)"), "{text}");
    assert!(text.contains("hilbert"), "{text}");

    // The out-of-core self-join produces the same link set as the
    // single-arena self-join (orders differ: the external driver
    // canonicalizes to (r, s), the parallel executor emits in
    // completion order).
    let mut link_sets = Vec::new();
    for input in [&single, &manifest] {
        let nt = dir.join(format!(
            "{}.nt",
            input.file_stem().unwrap().to_string_lossy()
        ));
        let out = stj()
            .arg("join")
            .arg(input)
            .arg(input)
            .arg("--ntriples")
            .arg(&nt)
            .output()
            .expect("join");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut lines: Vec<String> = std::fs::read_to_string(&nt)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert!(!lines.is_empty());
        lines.sort();
        link_sets.push(lines);
    }
    assert_eq!(link_sets[0], link_sets[1], "sharded links diverged");

    // A manifest on one side joins against a plain dataset on the other.
    let out = stj()
        .arg("join")
        .arg(&manifest)
        .arg(&single)
        .arg("--quiet")
        .output()
        .expect("mixed join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --trace needs the single in-memory run and is refused — with an
    // error that says why and how to get a traceable input instead of
    // just naming the incompatibility.
    let out = stj()
        .arg("join")
        .arg(&manifest)
        .arg(&manifest)
        .arg("--trace")
        .arg(dir.join("t.json"))
        .output()
        .expect("trace join");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("out-of-core"), "{err}");
    assert!(err.contains("STJM manifest"), "{err}");
    assert!(err.contains("single-arena"), "{err}");
    assert!(err.contains("without --shards"), "{err}");
    assert!(err.contains("drop --trace"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_default_v1_interop_and_info() {
    let dir = tempdir("formats");
    let wkt = dir.join("lakes.wkt");
    let v2_bin = dir.join("lakes-v2.stjd");
    let v1_bin = dir.join("lakes-v1.stjd");

    let out = stj()
        .args(["generate", "OLE", "0.003"])
        .arg(&wkt)
        .output()
        .expect("generate");
    assert!(out.status.success());

    // Default preprocess writes the columnar v2 format; --format v1
    // keeps the legacy record format.
    let out = stj()
        .arg("preprocess")
        .arg(&wkt)
        .arg(&v2_bin)
        .args(["--order", "12", "--extent", "0", "0", "1000", "1000"])
        .output()
        .expect("preprocess v2");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("format v2"));
    let out = stj()
        .arg("preprocess")
        .arg(&wkt)
        .arg(&v1_bin)
        .args(["--order", "12", "--extent", "0", "0", "1000", "1000"])
        .args(["--format", "v1"])
        .output()
        .expect("preprocess v1");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("format v1"));

    // `stj info` reads both formats; v2 reports per-section sizes.
    let out = stj().arg("info").arg(&v2_bin).output().expect("info v2");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("STJD v2"), "{text}");
    assert!(text.contains("sections:"), "{text}");
    assert!(text.contains("mbrs"), "{text}");
    let out = stj().arg("info").arg(&v1_bin).output().expect("info v1");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("STJD v1"), "{text}");

    // Both formats load into the same join results.
    let mut reports = Vec::new();
    for (bin, tag) in [(&v2_bin, "v2"), (&v1_bin, "v1")] {
        let json = dir.join(format!("report-{tag}.json"));
        let out = stj()
            .arg("join")
            .arg(bin)
            .arg(bin)
            .arg("--quiet")
            .arg("--stats-json")
            .arg(&json)
            .output()
            .expect("join");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let report = std::fs::read_to_string(&json).unwrap();
        let links = report
            .lines()
            .find(|l| l.contains("\"links\""))
            .expect("links line")
            .trim()
            .to_string();
        reports.push(links);
    }
    assert_eq!(reports[0], reports[1], "v1/v2 joins diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_command() {
    let dir = tempdir("check");
    let report = dir.join("check.json");
    let dump = dir.join("repro.wkt");
    let out = stj()
        .args(["check", "--seed", "0xEDBT26", "--pairs", "330"])
        .arg("--json")
        .arg(&report)
        .arg("--dump")
        .arg(&dump)
        .output()
        .expect("run stj check");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Summary on stderr, stdout pipeable.
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("0 violation(s)"), "{err}");
    assert!(String::from_utf8(out.stdout).unwrap().is_empty());

    let json = std::fs::read_to_string(&report).unwrap();
    for key in [
        "\"schema\": \"stj-check-report/v1\"",
        "\"seed\"",
        "\"pairs\"",
        "\"violations\"",
        "\"categories\"",
        "\"pipeline\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // No violations, so no repro dump is written.
    assert!(!dump.exists());

    // The threaded run over the same seed reports identical counts.
    let out = stj()
        .args([
            "check",
            "--seed",
            "0xEDBT26",
            "--pairs",
            "330",
            "--threads",
            "4",
        ])
        .output()
        .expect("run stj check threaded");
    assert!(out.status.success());

    // Bad flags are rejected.
    let out = stj()
        .args(["check", "--pairs", "nope"])
        .output()
        .expect("run stj check bad");
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

/// `stj join --trace`: the flight recorder writes Perfetto-loadable
/// Chrome trace JSON, the `--stats-json` report gains scheduler and
/// allocation-attribution sections, and single-threaded re-runs record
/// bit-identical span sequences (modulo timing).
#[test]
fn join_trace_and_attribution() {
    use stjoin::obs::Json;

    let dir = tempdir("trace");
    let wkt = dir.join("obe.wkt");
    let bin = dir.join("obe.stjd");

    let out = stj()
        .args(["generate", "OBE", "0.02"])
        .arg(&wkt)
        .output()
        .expect("generate");
    assert!(out.status.success());
    let out = stj()
        .arg("preprocess")
        .arg(&wkt)
        .arg(&bin)
        .args(["--order", "10"])
        .output()
        .expect("preprocess");
    assert!(out.status.success());

    // --trace requires the streaming executor.
    let out = stj()
        .arg("join")
        .arg(&bin)
        .arg(&bin)
        .args(["--exec", "materialized", "--trace"])
        .arg(dir.join("nope.json"))
        .output()
        .expect("materialized trace join");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("streaming"));

    let trace_path = dir.join("trace.json");
    let report_path = dir.join("report.json");
    let out = stj()
        .arg("join")
        .arg(&bin)
        .arg(&bin)
        .args(["--threads", "2", "--trace"])
        .arg(&trace_path)
        .arg("--stats-json")
        .arg(&report_path)
        .output()
        .expect("traced join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("flight-recorder"));

    // The trace is schema-valid Chrome trace-event JSON.
    let doc = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).expect("trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let tasks: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("tile-task"))
        .collect();
    assert!(!tasks.is_empty(), "trace holds task spans");
    for e in &tasks {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").is_some() && e.get("dur").is_some());
        let args = e.get("args").expect("span args");
        for key in [
            "task",
            "tile",
            "split_depth",
            "pairs",
            "links",
            "refinement_ns",
        ] {
            assert!(args.get(key).is_some(), "span args missing {key}");
        }
    }

    // The report gains scheduler and allocation sections; the refine
    // path must attribute allocations to at least 4 distinct sites.
    let report = Json::parse(&std::fs::read_to_string(&report_path).unwrap()).expect("report");
    let sched = report.get("sched").expect("sched section");
    assert!(sched.get("utilization").and_then(Json::as_f64).is_some());
    assert!(sched
        .get("imbalance_ratio")
        .and_then(Json::as_f64)
        .is_some());
    let alloc = report.get("alloc").expect("alloc section");
    assert!(alloc.get("total_calls").and_then(Json::as_u64).unwrap() > 0);
    let sites = alloc.get("sites").expect("sites");
    let Json::Obj(entries) = sites else {
        panic!("sites is an object")
    };
    let live = entries
        .iter()
        .filter(|(_, v)| v.get("calls").and_then(Json::as_u64).unwrap_or(0) > 0)
        .count();
    assert!(
        live >= 4,
        "expected >=4 live alloc sites, got {live}: {sites:?}"
    );

    // Single-threaded traces are bit-stable across re-runs on the
    // non-timing span fields.
    let span_keys = |path: &std::path::Path| -> Vec<(u64, u64, u64, u64, u64)> {
        let doc = Json::parse(&std::fs::read_to_string(path).unwrap()).expect("trace parses");
        let mut keys: Vec<(u64, u64, u64, u64, u64)> = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events")
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("tile-task"))
            .map(|e| {
                let a = e.get("args").expect("args");
                let g = |k: &str| a.get(k).and_then(Json::as_u64).expect("span field");
                (
                    g("task"),
                    g("tile"),
                    g("split_depth"),
                    g("pairs"),
                    g("links"),
                )
            })
            .collect();
        keys.sort_unstable();
        keys
    };
    let t1 = dir.join("trace-run1.json");
    let t2 = dir.join("trace-run2.json");
    for t in [&t1, &t2] {
        let out = stj()
            .arg("join")
            .arg(&bin)
            .arg(&bin)
            .args(["--threads", "1", "--quiet", "--trace"])
            .arg(t)
            .output()
            .expect("single-thread traced join");
        assert!(out.status.success());
    }
    let (k1, k2) = (span_keys(&t1), span_keys(&t2));
    assert!(!k1.is_empty());
    assert_eq!(k1, k2, "single-threaded span sequence must be bit-stable");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `stj bench-diff`: equal documents pass, regressions beyond the
/// threshold (or any change to exact-match metrics) exit non-zero.
#[test]
fn bench_diff_command() {
    let dir = tempdir("bench-diff");
    let doc = |wall_ns: u64, links: u64, allocs: u64| {
        format!(
            "{{\"schema\": \"stj-bench/v1\", \"benchmark\": \"join_executor\", \"runs\": [\
             {{\"exec\": \"streaming\", \"threads\": 4, \"wall_ns\": {wall_ns}, \
             \"pairs_per_sec\": {}, \"links\": {links}, \"allocs\": {allocs}}}]}}",
            1e15 / wall_ns as f64
        )
    };
    let base = dir.join("base.json");
    let same = dir.join("same.json");
    let slow = dir.join("slow.json");
    let diverged = dir.join("diverged.json");
    let churn = dir.join("churn.json");
    std::fs::write(&base, doc(1_000_000, 42, 5_000)).unwrap();
    std::fs::write(&same, doc(1_040_000, 42, 4_000)).unwrap(); // +4% wall, fewer allocs: ok
    std::fs::write(&slow, doc(1_500_000, 42, 5_000)).unwrap(); // +50%: regression
    std::fs::write(&diverged, doc(1_000_000, 41, 5_000)).unwrap(); // exact-match miss
    std::fs::write(&churn, doc(1_000_000, 42, 5_001)).unwrap(); // one extra alloc

    let diff = |a: &std::path::Path, b: &std::path::Path, extra: &[&str]| {
        stj()
            .arg("bench-diff")
            .arg(a)
            .arg(b)
            .args(extra)
            .output()
            .expect("run bench-diff")
    };

    let out = diff(&base, &same, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 regression(s)"));

    let out = diff(&base, &slow, &[]);
    assert!(!out.status.success(), "a +50% wall_ns must regress");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESS"));

    // A generous threshold lets the slow run pass.
    let out = diff(&base, &slow, &["--threshold", "75"]);
    assert!(out.status.success());

    // Exact-match metrics regress on any change, whatever the threshold.
    let out = diff(&base, &diverged, &["--threshold", "75"]);
    assert!(!out.status.success(), "changed link count must regress");

    // Alloc counts gate exact-or-lower: even one extra allocation
    // regresses regardless of the threshold (decreases pass — `same`
    // above already proved 4000 < 5000 is ok).
    let out = diff(&base, &churn, &["--threshold", "75"]);
    assert!(!out.status.success(), "any alloc increase must regress");
    assert!(String::from_utf8_lossy(&out.stdout).contains("allocs: 5000 -> 5001"));

    // A metric the baseline never measured (freshly instrumented) warns
    // and is skipped rather than failing the diff — old baselines stay
    // usable until they are refreshed.
    let fresh = dir.join("fresh.json");
    std::fs::write(
        &fresh,
        "{\"schema\": \"stj-bench/v1\", \"benchmark\": \"join_executor\", \"runs\": [\
         {\"exec\": \"streaming\", \"threads\": 4, \"wall_ns\": 1000000, \
         \"pairs_per_sec\": 1000000000, \"links\": 42, \"allocs\": 5000, \
         \"refine_p99_ns\": 1234}]}",
    )
    .unwrap();
    let out = diff(&base, &fresh, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains(
            "NEW      [exec=streaming threads=4] refine_p99_ns: 1234 (not in baseline; skipped)"
        ),
        "{text}"
    );
    assert!(text.contains("1 new metric(s) skipped"), "{text}");
    assert!(text.contains("0 regression(s)"), "{text}");

    let out = stj()
        .args(["bench-diff", "only-one.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

/// `stj join --adaptive`: all three modes produce identical sorted
/// N-Triples, the `--stats-json` report carries the `adaptive` block,
/// and an unknown mode name is rejected up front.
#[test]
fn adaptive_join_modes() {
    let dir = tempdir("adaptive");
    let wkt = dir.join("obe.wkt");
    let bin = dir.join("obe.stjd");

    let out = stj()
        .args(["generate", "OBE", "0.02"])
        .arg(&wkt)
        .output()
        .expect("generate");
    assert!(out.status.success());
    let out = stj()
        .arg("preprocess")
        .arg(&wkt)
        .arg(&bin)
        .args(["--order", "10"])
        .output()
        .expect("preprocess");
    assert!(out.status.success());

    let mut link_sets = Vec::new();
    for mode in ["off", "on", "force-skip"] {
        let nt = dir.join(format!("{mode}.nt"));
        let json = dir.join(format!("{mode}.json"));
        let out = stj()
            .arg("join")
            .arg(&bin)
            .arg(&bin)
            .args(["--adaptive", mode, "--quiet"])
            .arg("--ntriples")
            .arg(&nt)
            .arg("--stats-json")
            .arg(&json)
            .output()
            .expect("adaptive join");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut lines: Vec<String> = std::fs::read_to_string(&nt)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert!(!lines.is_empty());
        lines.sort();
        link_sets.push(lines);

        // Every report names its mode; the decision trace appears as
        // soon as the adaptive model actually ran (on / force-skip).
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"adaptive\""), "{report}");
        assert!(
            report.contains(&format!("\"mode\": \"{mode}\"")),
            "missing mode {mode} in {report}"
        );
        if mode != "off" {
            assert!(report.contains("\"classes\""), "{report}");
            assert!(report.contains("\"verdict\""), "{report}");
        }
    }
    assert_eq!(link_sets[0], link_sets[1], "links diverged under on");
    assert_eq!(
        link_sets[0], link_sets[2],
        "links diverged under force-skip"
    );

    // Unknown modes are rejected before any work happens.
    let out = stj()
        .arg("join")
        .arg(&bin)
        .arg(&bin)
        .args(["--adaptive", "sometimes"])
        .output()
        .expect("bad adaptive join");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown adaptive mode"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = stj().arg("frobnicate").output().expect("run stj");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

/// End-to-end `stj serve` + `stj query` round trip: start the service
/// on a free port, exercise every query family, assert the structured
/// 400 for bad probe WKT, then drain gracefully via SIGTERM and check
/// the exit code.
#[cfg(unix)]
#[test]
fn serve_and_query_round_trip() {
    use std::io::{BufRead, BufReader};

    let dir = tempdir("serve");
    let wkt = dir.join("boxes.wkt");
    let bin = dir.join("boxes.stjd");
    let stats_json = dir.join("serve-stats.json");

    let out = stj()
        .args(["generate", "TL", "0.02"])
        .arg(&wkt)
        .output()
        .expect("generate");
    assert!(out.status.success());
    let out = stj()
        .arg("preprocess")
        .arg(&wkt)
        .arg(&bin)
        .args(["--order", "8", "--name", "boxes"])
        .output()
        .expect("preprocess");
    assert!(out.status.success());

    let mut server = stj()
        .arg("serve")
        .arg("--data")
        .arg(&bin)
        .args(["--addr", "127.0.0.1:0", "--threads", "2", "--quiet"])
        .arg("--stats-json")
        .arg(&stats_json)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The first stdout line announces the picked port.
    let mut stdout = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();

    let query = |args: &[&str]| {
        stj()
            .args(["query", "--addr", &addr])
            .args(args)
            .output()
            .expect("run stj query")
    };

    let out = query(&["healthz"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = query(&[
        "relate",
        "boxes",
        "POLYGON((100 100, 500 100, 500 500, 100 500, 100 100))",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"matches\""), "{text}");

    // Invalid probe WKT: non-zero exit, structured 400 with a
    // line-numbered parse error on stdout.
    let out = query(&["relate", "boxes", "POLYGON((broken"]);
    assert!(!out.status.success(), "bad WKT must fail the client");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"kind\": \"bad_wkt\""), "{text}");
    assert!(text.contains("line 1:"), "{text}");

    let out = query(&["pair", "boxes", "0", "boxes", "0"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"equals\""));

    let out = query(&["join", "boxes", "boxes", "--max-links", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.lines().last().unwrap_or("").contains("\"summary\""),
        "{text}"
    );

    let out = query(&["--framed", "stats"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stj-serve-report/v1"), "{text}");

    // Prometheus scrape via the one-shot client.
    let out = query(&["metrics"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("# TYPE stj_serve_requests_total counter"),
        "{text}"
    );
    assert!(
        text.contains("stj_serve_requests_total{transport=\"http\"}"),
        "{text}"
    );

    // Graceful drain: SIGTERM, then the server must exit 0 and write
    // the final stats report.
    let term = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = server.wait().expect("wait for serve");
    assert!(
        status.success(),
        "serve must drain cleanly on SIGTERM: {status:?}"
    );
    let report = std::fs::read_to_string(&stats_json).expect("final stats written");
    assert!(
        report.contains("\"schema\": \"stj-serve-report/v1\""),
        "{report}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `stj query` honors `Retry-After` on a 429 shed: bounded retries
/// against a fake server that sheds once and then serves.
#[test]
fn query_retries_on_429_with_retry_after() {
    use std::io::{Read, Write};
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        let responses = [
            "HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\n\
             retry-after: 1\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
             content-length: 15\r\nconnection: close\r\n\r\n{\"status\":\"ok\"}",
        ];
        for resp in responses {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut head = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = conn.read(&mut buf).expect("read request");
                head.extend_from_slice(&buf[..n]);
                if n == 0 || head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            conn.write_all(resp.as_bytes()).expect("write response");
        }
    });

    let out = stj()
        .args(["query", "--addr", &addr, "healthz"])
        .output()
        .expect("run stj query");
    server.join().expect("fake server");
    assert!(
        out.status.success(),
        "query must succeed after the retry: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("retry 1/3"),
        "retry not announced: {stderr}"
    );
}

/// `--no-retry` turns a 429 into an immediate failure.
#[test]
fn query_no_retry_fails_fast_on_429() {
    use std::io::{Read, Write};
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut head = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = conn.read(&mut buf).expect("read request");
            head.extend_from_slice(&buf[..n]);
            if n == 0 || head.windows(4).any(|w| w == b"\r\n\r\n") {
                break;
            }
        }
        conn.write_all(
            b"HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\n\
              retry-after: 1\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
        )
        .expect("write response");
    });

    let t0 = std::time::Instant::now();
    let out = stj()
        .args(["query", "--addr", &addr, "--no-retry", "healthz"])
        .output()
        .expect("run stj query");
    server.join().expect("fake server");
    assert!(!out.status.success(), "--no-retry must fail on 429");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("server returned 429"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(3),
        "--no-retry must not sleep"
    );
}

/// Bulk link discovery three ways — offline `stj join --ntriples`,
/// offline `stj discover`, and the served `/v1/discover` stream — all
/// produce the same link set, byte-identical after sorting.
#[cfg(unix)]
#[test]
fn discover_matches_offline_join_ntriples() {
    use std::io::{BufRead, BufReader};

    let dir = tempdir("discover");
    let lakes_wkt = dir.join("lakes.wkt");
    let parks_wkt = dir.join("parks.wkt");
    let lakes_bin = dir.join("lakes.stjd");
    let parks_bin = dir.join("parks.stjd");
    let links_nt = dir.join("links.nt");

    for (ds, path) in [("OLE", &lakes_wkt), ("OPE", &parks_wkt)] {
        let out = stj()
            .args(["generate", ds, "0.003"])
            .arg(path)
            .output()
            .expect("generate");
        assert!(out.status.success());
    }
    // A common extent so the offline join accepts the pair (the served
    // discover path rasterizes probes on the dataset's own grid).
    for (wkt, bin, name) in [(&lakes_wkt, &lakes_bin, "lakes"), (&parks_wkt, &parks_bin, "parks")] {
        let out = stj()
            .arg("preprocess")
            .arg(wkt)
            .arg(bin)
            .args(["--order", "8", "--extent", "0", "0", "1000", "1000", "--name", name])
            .output()
            .expect("preprocess");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }

    let sorted = |text: &str| -> Vec<String> {
        let mut lines: Vec<String> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect();
        lines.sort();
        lines
    };

    // Ground truth: the offline join's N-Triples.
    let out = stj()
        .arg("join")
        .arg(&lakes_bin)
        .arg(&parks_bin)
        .args(["--quiet", "--ntriples"])
        .arg(&links_nt)
        .output()
        .expect("join");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let join_lines = sorted(&std::fs::read_to_string(&links_nt).expect("links.nt"));
    assert!(!join_lines.is_empty(), "join found no links — test is vacuous");

    // Offline discover: lakes WKT on stdin against the parks dataset.
    let out = stj()
        .args(["discover", "--format", "nt", "--name", "lakes", "--data"])
        .arg(&parks_bin)
        .stdin(std::fs::File::open(&lakes_wkt).expect("open lakes.wkt"))
        .output()
        .expect("discover");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let discover_lines = sorted(&String::from_utf8_lossy(&out.stdout));
    assert_eq!(
        discover_lines, join_lines,
        "offline discover disagrees with the offline join"
    );

    // Served discover: the same probes through `/v1/discover`.
    let mut server = stj()
        .arg("serve")
        .arg("--data")
        .arg(&parks_bin)
        .args(["--addr", "127.0.0.1:0", "--threads", "2", "--quiet"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();

    let out = stj()
        .args([
            "query", "--addr", &addr, "--format", "nt", "--name", "lakes", "discover", "parks",
        ])
        .stdin(std::fs::File::open(&lakes_wkt).expect("open lakes.wkt"))
        .output()
        .expect("query discover");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let served_lines = sorted(&String::from_utf8_lossy(&out.stdout));
    assert_eq!(
        served_lines, join_lines,
        "served discover disagrees with the offline join"
    );

    let term = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    assert!(server.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGHUP hot-reloads the dataset generation in a running server.
#[cfg(unix)]
#[test]
fn sighup_reloads_datasets() {
    use std::io::{BufRead, BufReader};

    let dir = tempdir("sighup");
    let wkt = dir.join("boxes.wkt");
    let bin = dir.join("boxes.stjd");
    let out = stj()
        .args(["generate", "TL", "0.02"])
        .arg(&wkt)
        .output()
        .expect("generate");
    assert!(out.status.success());
    let out = stj()
        .arg("preprocess")
        .arg(&wkt)
        .arg(&bin)
        .args(["--order", "8", "--name", "boxes"])
        .output()
        .expect("preprocess");
    assert!(out.status.success());

    let mut server = stj()
        .arg("serve")
        .arg("--data")
        .arg(&bin)
        .args(["--addr", "127.0.0.1:0", "--threads", "2", "--quiet"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();

    let hup = Command::new("kill")
        .args(["-HUP", &server.id().to_string()])
        .status()
        .expect("send SIGHUP");
    assert!(hup.success());

    // The reload happens on a background thread; poll /stats for the
    // new generation.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let out = stj()
            .args(["query", "--addr", &addr, "stats"])
            .output()
            .expect("stats");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        if text.contains("\"id\": 2") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "SIGHUP reload never landed: {text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    // Requests still serve after the swap.
    let out = stj()
        .args(["query", "--addr", &addr, "pair", "boxes", "0", "boxes", "0"])
        .output()
        .expect("pair");
    assert!(out.status.success());

    let term = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    assert!(server.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&dir);
}
