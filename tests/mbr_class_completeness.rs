//! Figure 4 completeness: for arbitrary valid polygon pairs, the true
//! most specific relation always belongs to the candidate set of the
//! pair's MBR classification — the property the OP2 baseline and the
//! intermediate-filter routing both rely on.

use proptest::prelude::*;
use stjoin::datagen::{pair_with_relation, star_polygon, StarParams};
use stjoin::prelude::*;

fn star(seed: u64, n: usize, cx: f64, cy: f64, radius: f64) -> Polygon {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    star_polygon(
        &mut rng,
        &StarParams {
            center: Point::new(cx, cy),
            avg_radius: radius,
            irregularity: 0.5,
            spikiness: 0.3,
            num_vertices: n,
        },
    )
}

fn check(a: &Polygon, b: &Polygon, ctx: &str) {
    let mbr_rel = MbrRelation::classify(a.mbr(), b.mbr());
    let truth = TopoRelation::most_specific(&relate(a, b));
    assert!(
        mbr_rel.candidates().contains(&truth),
        "{ctx}: true relation {truth:?} outside candidates {:?} of MBR class {mbr_rel:?}",
        mbr_rel.candidates()
    );
    // The `relate_p` short-circuit must agree: the most specific relation
    // is always admitted.
    assert!(mbr_rel.admits(truth), "{ctx}: admits({truth:?}) is false");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_pairs_stay_within_figure4_candidates(
        s1 in 0u64..1_000_000,
        s2 in 0u64..1_000_000,
        n1 in 4usize..40,
        n2 in 4usize..40,
        dx in -60.0..60.0f64,
        dy in -60.0..60.0f64,
        scale in 0.1..3.0f64,
    ) {
        let a = star(s1, n1, 300.0, 300.0, 30.0);
        let b = star(s2, n2, 300.0 + dx, 300.0 + dy, 30.0 * scale);
        check(&a, &b, "random");
        check(&b, &a, "random swapped");
    }
}

#[test]
fn targeted_relations_stay_within_figure4_candidates() {
    for rel in TopoRelation::SPECIFIC_TO_GENERAL {
        for seed in 0..10u64 {
            let (a, b) = pair_with_relation(rel, 64, seed);
            check(&a, &b, &format!("{rel:?} seed {seed}"));
        }
    }
}

#[test]
fn crossing_mbrs_really_mean_intersects() {
    // Stress the Figure 4(d) claim with bodies that barely reach their
    // MBR edges: a thin horizontal S-curve vs a thin vertical one.
    let horizontal = Polygon::from_coords(
        vec![
            (0.0, 40.0),
            (100.0, 40.0),
            (100.0, 44.0),
            (8.0, 44.0),
            (8.0, 56.0),
            (100.0, 56.0),
            (100.0, 60.0),
            (0.0, 60.0),
            (0.0, 48.0),
            (4.0, 48.0),
            (4.0, 44.0),
            (0.0, 44.0),
        ],
        vec![],
    )
    .unwrap();
    let vertical = Polygon::from_coords(
        vec![
            (40.0, 0.0),
            (44.0, 0.0),
            (44.0, 92.0),
            (56.0, 92.0),
            (56.0, 0.0),
            (60.0, 0.0),
            (60.0, 100.0),
            (40.0, 100.0),
        ],
        vec![],
    )
    .unwrap();
    assert_eq!(
        MbrRelation::classify(horizontal.mbr(), vertical.mbr()),
        MbrRelation::Cross
    );
    let truth = TopoRelation::most_specific(&relate(&horizontal, &vertical));
    assert_eq!(truth, TopoRelation::Intersects);
}
