//! The headline correctness property of the reproduction: for arbitrary
//! polygon pairs, every method (P+C pipeline, ST2, OP2, APRIL) returns
//! exactly the relation the DE-9IM oracle dictates, and `relate_p`
//! agrees with mask semantics for every predicate.
//!
//! Random pairs are drawn to hit all MBR classes (disjoint, equal,
//! containment, cross-ish, partial overlap) and all determination paths.

use proptest::prelude::*;
use stjoin::datagen::{pair_with_relation, star_polygon, StarParams};
use stjoin::prelude::*;

const ALL_RELATIONS: [TopoRelation; 8] = [
    TopoRelation::Disjoint,
    TopoRelation::Intersects,
    TopoRelation::Meets,
    TopoRelation::Equals,
    TopoRelation::Inside,
    TopoRelation::Contains,
    TopoRelation::CoveredBy,
    TopoRelation::Covers,
];

fn grid() -> Grid {
    Grid::new(Rect::from_coords(-200.0, -200.0, 1200.0, 1200.0), 11)
}

/// Oracle: the most specific relation per the DE-9IM matrix.
fn oracle(r: &SpatialObject, s: &SpatialObject) -> TopoRelation {
    TopoRelation::most_specific(&relate(&r.polygon, &s.polygon))
}

fn assert_all_methods_agree(r: &SpatialObject, s: &SpatialObject, ctx: &str) {
    let expect = oracle(r, s);
    assert_eq!(
        find_relation(r.view(), s.view()).relation,
        expect,
        "P+C {ctx}"
    );
    assert_eq!(
        find_relation_st2(r.view(), s.view()).relation,
        expect,
        "ST2 {ctx}"
    );
    assert_eq!(
        find_relation_op2(r.view(), s.view()).relation,
        expect,
        "OP2 {ctx}"
    );
    assert_eq!(
        find_relation_april(r.view(), s.view()).relation,
        expect,
        "APRIL {ctx}"
    );
    for p in ALL_RELATIONS {
        let want = p.holds(&relate(&r.polygon, &s.polygon));
        assert_eq!(
            relate_p(r.view(), s.view(), p).holds,
            want,
            "relate_p({p:?}) {ctx}"
        );
    }
}

/// A random star polygon strategy with proptest-controlled parameters.
fn star_strategy() -> impl Strategy<Value = Polygon> {
    (
        0u64..1_000_000,  // seed
        4usize..60,       // vertices
        -50.0..1000.0f64, // cx
        -50.0..1000.0f64, // cy
        0.5..120.0f64,    // radius
    )
        .prop_map(|(seed, n, cx, cy, radius)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            star_polygon(
                &mut rng,
                &StarParams {
                    center: Point::new(cx, cy),
                    avg_radius: radius,
                    irregularity: 0.5,
                    spikiness: 0.3,
                    num_vertices: n,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Independent random pairs — mostly disjoint or partial overlaps.
    #[test]
    fn pipeline_matches_oracle_on_random_pairs(a in star_strategy(), b in star_strategy()) {
        let g = grid();
        let r = SpatialObject::build(a, &g);
        let s = SpatialObject::build(b, &g);
        assert_all_methods_agree(&r, &s, "random pair");
    }

    /// Nested pairs — exercises containment paths and the Inside/Contains
    /// intermediate filters.
    #[test]
    fn pipeline_matches_oracle_on_nested_pairs(
        a in star_strategy(),
        factor in 0.05..1.4f64,
        dx in -20.0..20.0f64,
        dy in -20.0..20.0f64,
    ) {
        let g = grid();
        let c = a.mbr().center();
        let scaled: Vec<Point> = a
            .outer()
            .vertices()
            .iter()
            .map(|v| Point::new(c.x + (v.x - c.x) * factor + dx, c.y + (v.y - c.y) * factor + dy))
            .collect();
        let b = Polygon::new(Ring::new(scaled).unwrap(), Vec::new());
        let r = SpatialObject::build(a, &g);
        let s = SpatialObject::build(b, &g);
        assert_all_methods_agree(&r, &s, "nested pair");
        assert_all_methods_agree(&s, &r, "nested pair swapped");
    }
}

#[test]
fn pipeline_matches_oracle_on_targeted_relations() {
    let g = grid();
    for rel in ALL_RELATIONS {
        for seed in 0..8u64 {
            for complexity in [16usize, 100, 700] {
                let (a, b) = pair_with_relation(rel, complexity, seed);
                let r = SpatialObject::build(a, &g);
                let s = SpatialObject::build(b, &g);
                assert_eq!(oracle(&r, &s), rel, "generator contract {rel:?}");
                assert_all_methods_agree(&r, &s, &format!("{rel:?} seed {seed} c {complexity}"));
            }
        }
    }
}

#[test]
fn determination_paths_are_all_reachable() {
    // Over a diverse polygon soup, the P+C pipeline must exercise every
    // determination path (MBR, intermediate, refinement).
    let g = grid();
    // Scale chosen so the soup is dense enough that containment pairs
    // (intermediate-filter decisions) occur for any RNG stream.
    let polys = stjoin::datagen::generate(stjoin::datagen::DatasetId::OLE, 0.03);
    let objs: Vec<SpatialObject> = polys
        .into_iter()
        .map(|p| SpatialObject::build(p, &g))
        .collect();
    let mut stats = PipelineStats::default();
    for (i, r) in objs.iter().enumerate() {
        for s in objs.iter().skip(i + 1) {
            stats.record(&find_relation(r.view(), s.view()));
        }
    }
    assert!(stats.pairs > 0);
    assert!(stats.by_mbr > 0, "no MBR-decided pairs: {stats:?}");
    assert!(
        stats.by_intermediate > 0,
        "no intermediate-filter-decided pairs: {stats:?}"
    );
    assert_eq!(
        stats.pairs,
        stats.by_mbr + stats.by_intermediate + stats.refined
    );
}
