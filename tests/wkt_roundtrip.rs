//! WKT round-trip property across generated polygons, including holes
//! and multi-polygons.

use proptest::prelude::*;
use stjoin::datagen::{star_polygon_with_holes, StarParams};
use stjoin::geom::wkt;
use stjoin::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn polygon_roundtrip(seed in 0u64..1_000_000, n in 4usize..50, holes in 0usize..3) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = star_polygon_with_holes(
            &mut rng,
            &StarParams {
                center: Point::new(100.0, -50.0),
                avg_radius: 30.0,
                irregularity: 0.5,
                spikiness: 0.3,
                num_vertices: n,
            },
            holes,
            6,
        );
        let text = wkt::polygon_to_wkt(&poly);
        let parsed = wkt::polygon_from_wkt(&text).expect("roundtrip parse");
        prop_assert_eq!(&parsed, &poly);
        // Idempotence of format → parse → format.
        prop_assert_eq!(wkt::polygon_to_wkt(&parsed), text);
    }

    #[test]
    fn multipolygon_roundtrip(seed in 0u64..1_000_000, members in 1usize..5) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use stjoin::datagen::star_polygon;
        let mut rng = StdRng::seed_from_u64(seed);
        let polys: Vec<Polygon> = (0..members)
            .map(|i| {
                star_polygon(
                    &mut rng,
                    &StarParams {
                        center: Point::new(i as f64 * 200.0, 0.0),
                        avg_radius: 20.0,
                        irregularity: 0.4,
                        spikiness: 0.2,
                        num_vertices: 12,
                    },
                )
            })
            .collect();
        let mp = MultiPolygon::new(polys);
        let text = wkt::multipolygon_to_wkt(&mp);
        let parsed = wkt::multipolygon_from_wkt(&text).expect("roundtrip parse");
        prop_assert_eq!(parsed, mp);
    }
}
