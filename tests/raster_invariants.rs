//! Property tests for the raster substrate: the soundness invariants the
//! intermediate filters rely on, checked against exact geometry.

use proptest::prelude::*;
use stjoin::datagen::{star_polygon, StarParams};
use stjoin::geom::polygon::Location;
use stjoin::prelude::*;
use stjoin::raster::hilbert;

fn star(seed: u64, n: usize, cx: f64, cy: f64, radius: f64) -> Polygon {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    star_polygon(
        &mut rng,
        &StarParams {
            center: Point::new(cx, cy),
            avg_radius: radius,
            irregularity: 0.6,
            spikiness: 0.4,
            num_vertices: n,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// P cells are wholly interior; every polygon vertex's cell is in C;
    /// P ⊆ C.
    #[test]
    fn april_soundness(
        seed in 0u64..1_000_000,
        n in 4usize..80,
        cx in 10.0..90.0f64,
        cy in 10.0..90.0f64,
        radius in 0.5..30.0f64,
        order in 4u32..8,
    ) {
        let poly = star(seed, n, cx, cy, radius);
        let grid = Grid::new(Rect::from_coords(-40.0, -40.0, 140.0, 140.0), order);
        let a = AprilApprox::build(&poly, &grid);

        prop_assert!(a.p.inside(&a.c), "P not within C");
        prop_assert!(!a.c.is_empty(), "C empty for non-empty polygon");

        // Every P cell's four corners and center lie inside-or-on the
        // polygon, and strictly: the center must be interior.
        for id in a.p.iter_cells().take(512) {
            let (x, y) = hilbert::d_to_xy(order, id);
            let rect = grid.cell_rect(x, y);
            let center = grid.cell_center(x, y);
            prop_assert_eq!(poly.locate(center), Location::Inside, "P cell center not interior");
            for corner in [
                rect.min,
                Point::new(rect.max.x, rect.min.y),
                rect.max,
                Point::new(rect.min.x, rect.max.y),
            ] {
                prop_assert_ne!(poly.locate(corner), Location::Outside, "P cell corner outside");
            }
        }

        // Every vertex of the polygon lies in some C cell.
        for v in poly.outer().vertices() {
            let (col, row) = grid.cell_of(*v);
            let id = hilbert::xy_to_d(order, col, row);
            prop_assert!(a.c.contains_cell(id), "vertex cell missing from C");
        }
    }

    /// Hilbert bijection and locality across random coordinates/orders.
    #[test]
    fn hilbert_roundtrip(order in 1u32..=16, bits in any::<u64>()) {
        let side = 1u64 << order;
        let x = (bits & 0xFFFF_FFFF) as u32 % side as u32;
        let y = (bits >> 32) as u32 % side as u32;
        let d = hilbert::xy_to_d(order, x, y);
        prop_assert!(d < side * side);
        prop_assert_eq!(hilbert::d_to_xy(order, d), (x, y));
    }

    /// Interval-list relations vs naive set semantics.
    #[test]
    fn interval_relations_match_sets(
        ra in proptest::collection::vec((0u64..60, 1u64..8), 0..10),
        rb in proptest::collection::vec((0u64..60, 1u64..8), 0..10),
    ) {
        use std::collections::HashSet;
        let ranges_a: Vec<(u64, u64)> = ra.iter().map(|&(s, l)| (s, s + l)).collect();
        let ranges_b: Vec<(u64, u64)> = rb.iter().map(|&(s, l)| (s, s + l)).collect();
        let a = IntervalList::from_ranges(ranges_a.clone());
        let b = IntervalList::from_ranges(ranges_b.clone());
        let sa: HashSet<u64> = ranges_a.iter().flat_map(|&(s, e)| s..e).collect();
        let sb: HashSet<u64> = ranges_b.iter().flat_map(|&(s, e)| s..e).collect();

        prop_assert_eq!(a.overlaps(&b), !sa.is_disjoint(&sb));
        prop_assert_eq!(a.matches(&b), sa == sb);
        prop_assert_eq!(a.inside(&b), sa.is_subset(&sb));
        prop_assert_eq!(a.contains(&b), sb.is_subset(&sa));
        prop_assert_eq!(a.num_cells(), sa.len() as u64);
        // Normalization idempotence.
        let renorm = IntervalList::from_ranges(a.intervals().to_vec());
        prop_assert!(renorm.matches(&a));
    }

    /// The APRIL-based disjointness verdict is never wrong: if C lists
    /// don't overlap, the exact relation is disjoint.
    #[test]
    fn conservative_disjointness(
        seed1 in 0u64..100_000,
        seed2 in 0u64..100_000,
        cx in 20.0..80.0f64,
        cy in 20.0..80.0f64,
        dx in -30.0..30.0f64,
        dy in -30.0..30.0f64,
    ) {
        let grid = Grid::new(Rect::from_coords(-60.0, -60.0, 160.0, 160.0), 8);
        let a = star(seed1, 24, cx, cy, 12.0);
        let b = star(seed2, 24, cx + dx, cy + dy, 12.0);
        let aa = AprilApprox::build(&a, &grid);
        let ab = AprilApprox::build(&b, &grid);
        if !aa.c.overlaps(&ab.c) {
            let rel = TopoRelation::most_specific(&relate(&a, &b));
            prop_assert_eq!(rel, TopoRelation::Disjoint);
        }
        // And the progressive proof: C(a) within P(b) implies inside.
        if aa.c.inside(&ab.p) {
            let rel = TopoRelation::most_specific(&relate(&a, &b));
            prop_assert_eq!(rel, TopoRelation::Inside);
        }
    }
}

#[test]
fn finer_grids_tighten_the_approximation() {
    let poly = star(7, 48, 50.0, 50.0, 25.0);
    let area = poly.area();
    let mut prev_gap = f64::INFINITY;
    for order in [4u32, 5, 6, 7, 8] {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), order);
        let a = AprilApprox::build(&poly, &grid);
        let cell_area = grid.cell_width() * grid.cell_height();
        let gap = (a.c.num_cells() - a.p.num_cells()) as f64 * cell_area;
        assert!(gap < prev_gap, "order {order}: gap {gap} >= {prev_gap}");
        assert!(a.p.num_cells() as f64 * cell_area <= area + 1e-9);
        assert!(a.c.num_cells() as f64 * cell_area >= area - 1e-9);
        prev_gap = gap;
    }
}
