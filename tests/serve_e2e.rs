//! End-to-end tests of the serving stack against a real in-process
//! server: every byte goes over a loopback TCP connection through the
//! production accept/queue/worker/dispatch path.
//!
//! The acceptance bar is *bit-identical results*: for adversarial pair
//! workloads (the same generator the differential check harness uses),
//! the server's `pair`, `relate`, and `join` answers must match the
//! offline pipeline exactly.

use stjoin::core::{find_relation, TopologyJoin};
use stjoin::datagen::{adversarial_pair, adversarial_space};
use stjoin::de9im::TopoRelation;
use stjoin::geom::wkt::polygon_to_wkt;
use stjoin::prelude::*;
use stjoin::serve::{Client, LoadedDataset, ServeConfig, ServeCtx, Server};
use stjoin::store::write_arena_v2;
use stjoin::Tiling;

const SEED: u64 = 0xE2E_5E12;
const PAIRS: u64 = 44; // covers all 11 adversarial categories 4x

/// Builds the two adversarial datasets (all `a` sides, all `b` sides)
/// on a shared grid over the adversarial space.
fn adversarial_arenas() -> (DatasetArena, DatasetArena, Grid) {
    let grid = Grid::new(adversarial_space(), 8);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..PAIRS {
        let p = adversarial_pair(SEED, i);
        left.push(p.a);
        right.push(p.b);
    }
    let l = Dataset::build("adv-a", left, &grid).to_arena();
    let r = Dataset::build("adv-b", right, &grid).to_arena();
    (l, r, grid)
}

/// Starts a server on a free port and returns (address, shutdown
/// closure joining the serve thread).
fn start_server(config: ServeConfig) -> (String, impl FnOnce()) {
    let (l, r, grid) = adversarial_arenas();
    let datasets = vec![
        LoadedDataset {
            name: l.name().to_string(),
            tiling: Tiling::for_probes(l.mbrs()),
            arena: l,
            grid: grid.clone(),
        },
        LoadedDataset {
            name: r.name().to_string(),
            tiling: Tiling::for_probes(r.mbrs()),
            arena: r,
            grid,
        },
    ];
    let server = Server::bind(ServeCtx::new(config, datasets)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let stop = move || {
        flag.trigger();
        handle.join().expect("join serve thread");
    };
    (addr, stop)
}

fn free_port_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn pair_replay_is_bit_identical_to_offline_pipeline() {
    let (addr, stop) = start_server(free_port_config());
    let (l, r, _grid) = adversarial_arenas();
    let mut client = Client::new(addr, false);
    for i in 0..PAIRS as usize {
        let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
        let (status, body) = client.request("GET", &target, b"").expect("pair request");
        assert_eq!(status, 200, "pair {i}");
        let body = String::from_utf8(body).expect("utf8");
        let offline = find_relation(l.object(i), r.object(i));
        assert!(
            body.contains(&format!("\"relation\": \"{}\"", offline.relation)),
            "pair {i}: server disagreed with offline pipeline: {body}"
        );
    }
    stop();
}

#[test]
fn relate_replay_matches_offline_bruteforce() {
    let (addr, stop) = start_server(free_port_config());
    let (_l, r, grid) = adversarial_arenas();
    let mut client = Client::new(addr, false);
    // Probe dataset adv-b with each left-side polygon, rebuilt from its
    // WKT round-trip exactly as the server will see it.
    for i in (0..PAIRS as usize).step_by(3) {
        let wkt = polygon_to_wkt(&adversarial_pair(SEED, i as u64).a);
        let target = "/v1/relate?dataset=adv-b&limit=1000000";
        let (status, body) = client
            .request("POST", target, wkt.as_bytes())
            .expect("relate request");
        assert_eq!(
            status,
            200,
            "relate {i}: {}",
            String::from_utf8_lossy(&body)
        );
        let body = String::from_utf8(body).expect("utf8");
        assert!(body.contains("\"truncated\": false"), "{body}");

        // Offline truth: the same probe object built from the same WKT,
        // against every stored object.
        let probe_poly = stjoin::geom::wkt::polygon_from_wkt(&wkt).expect("roundtrip wkt");
        let probe = SpatialObject::build(probe_poly, &grid);
        for j in 0..r.len() {
            let out = find_relation(probe.view(), r.object(j));
            let expected = format!("\"id\": {j},\n      \"relation\": \"{}\"", out.relation);
            if out.relation == TopoRelation::Disjoint {
                assert!(
                    !body.contains(&format!("\"id\": {j},")),
                    "probe {i}: server reported disjoint object {j}: {body}"
                );
            } else {
                assert!(
                    body.contains(&expected),
                    "probe {i}: missing/differing match for object {j} \
                     (expected {:?}): {body}",
                    out.relation
                );
            }
        }
    }
    stop();
}

#[test]
fn join_replay_matches_offline_join() {
    let (addr, stop) = start_server(free_port_config());
    let (l, r, _grid) = adversarial_arenas();
    let offline = TopologyJoin::new().run(&l, &r);
    let mut offline_lines: Vec<String> = offline
        .links
        .iter()
        .map(|k| {
            format!(
                "{{\"r\":{},\"s\":{},\"relation\":\"{}\"}}",
                k.r, k.s, k.relation
            )
        })
        .collect();
    offline_lines.sort();

    let mut client = Client::new(addr, false);
    let (status, body) = client
        .request("POST", "/v1/join?left=adv-a&right=adv-b", b"")
        .expect("join request");
    assert_eq!(status, 200);
    let body = String::from_utf8(body).expect("utf8");
    let mut server_lines: Vec<String> = body
        .lines()
        .filter(|line| !line.starts_with("{\"summary\""))
        .map(str::to_string)
        .collect();
    server_lines.sort();
    assert_eq!(
        server_lines, offline_lines,
        "served join differs from offline join"
    );

    let summary = body
        .lines()
        .find(|line| line.starts_with("{\"summary\""))
        .expect("summary line");
    assert!(
        summary.contains(&format!("\"links\":{}", offline.links.len())),
        "{summary}"
    );
    assert!(summary.contains("\"truncated\":false"), "{summary}");
    stop();
}

#[test]
fn framed_transport_agrees_with_http() {
    let (addr, stop) = start_server(free_port_config());
    let mut http = Client::new(addr.clone(), false);
    let mut framed = Client::new(addr, true);
    for i in 0..8 {
        let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
        let (hs, hb) = http.request("GET", &target, b"").expect("http");
        let (fs, fb) = framed.request("GET", &target, b"").expect("framed");
        assert_eq!(hs, fs);
        assert_eq!(hb, fb, "transports disagree on pair {i}");
    }
    stop();
}

#[test]
fn bad_wkt_probe_gets_line_numbered_400() {
    let (addr, stop) = start_server(free_port_config());
    let mut client = Client::new(addr, false);
    let (status, body) = client
        .request("POST", "/v1/relate?dataset=adv-a", b"POLYGON((1 2, 3")
        .expect("request");
    assert_eq!(status, 400);
    let body = String::from_utf8(body).expect("utf8");
    assert!(body.contains("\"kind\": \"bad_wkt\""), "{body}");
    assert!(body.contains("line 1:"), "{body}");
    stop();
}

#[test]
fn server_round_trips_stats_and_cache_hits() {
    let (addr, stop) = start_server(free_port_config());
    let mut client = Client::new(addr, false);
    let wkt = b"POLYGON((100 100, 300 100, 300 300, 100 300, 100 100))";
    let (s1, b1) = client
        .request("POST", "/v1/relate?dataset=adv-a", wkt)
        .expect("first");
    let (s2, b2) = client
        .request("POST", "/v1/relate?dataset=adv-a", wkt)
        .expect("second");
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "cached response must be byte-identical");

    let (status, stats) = client.request("GET", "/stats", b"").expect("stats");
    assert_eq!(status, 200);
    let stats = String::from_utf8(stats).expect("utf8");
    assert!(
        stats.contains("\"schema\": \"stj-serve-report/v1\""),
        "{stats}"
    );
    assert!(
        stats.contains("\"hits\": 1"),
        "cache hit not recorded: {stats}"
    );
    stop();
}

#[test]
fn load_shedding_returns_429_when_queue_full() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    // One worker, queue depth 1. A connection with a half-sent request
    // pins the worker (it blocks reading the rest); one more connection
    // fills the queue; everything after that must be shed with 429.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let (addr, stop) = start_server(cfg);

    let mut pin = TcpStream::connect(&addr).expect("pin connection");
    pin.write_all(b"GET /healthz HTTP/1.1\r\n")
        .expect("partial write");
    // Give the worker time to pick it up and block on the missing head.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let mut extra: Vec<TcpStream> = Vec::new();
    let mut shed_seen = false;
    for _ in 0..8 {
        let mut conn = TcpStream::connect(&addr).expect("extra connection");
        conn.set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .expect("timeout");
        let mut first = [0u8; 1];
        // Shed connections get an immediate 429 + close; queued ones
        // time out waiting (the worker is pinned).
        if conn.read(&mut first).is_ok() {
            let mut rest = String::new();
            let _ = conn.read_to_string(&mut rest);
            let resp = format!("{}{rest}", first[0] as char);
            assert!(resp.contains("429"), "unexpected early response: {resp}");
            assert!(resp.contains("retry-after: 1"), "{resp}");
            shed_seen = true;
            break;
        }
        extra.push(conn);
    }
    assert!(shed_seen, "no connection was shed despite a full queue");

    // Unblock the pinned worker so the drain is quick.
    let _ = pin.write_all(b"connection: close\r\n\r\n");
    drop(pin);
    drop(extra);
    stop();
}

/// `GET /metrics` over the real wire parses as Prometheus text
/// exposition format 0.0.4 and reflects the requests that hit it.
#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let (addr, stop) = start_server(free_port_config());
    let mut client = Client::new(addr, false);

    // Generate some traffic first so the counters are non-trivial.
    let (status, _) = client
        .request("GET", "/v1/pair?left=adv-a&i=0&right=adv-b&j=0", b"")
        .expect("pair request");
    assert_eq!(status, 200);
    let (status, _) = client.request("GET", "/nope", b"").expect("404 request");
    assert_eq!(status, 404);

    let (status, body) = client
        .request("GET", "/metrics", b"")
        .expect("metrics request");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf8 metrics");

    // Every line is a comment (`# HELP name ...` / `# TYPE name kind`)
    // or a sample (`name{labels} value` with a float-parsable value).
    let mut samples = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().expect("comment keyword");
            assert!(
                matches!(keyword, "HELP" | "TYPE"),
                "unexpected comment line: {line}"
            );
            assert!(words.next().is_some(), "comment missing metric: {line}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = series.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed labels in: {line}");
            assert!(series[open..].contains('='), "empty label set in: {line}");
        }
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad sample value in: {line}"));
        samples += 1;
    }
    assert!(
        samples >= 20,
        "expected a full exposition, got {samples} samples"
    );

    // The traffic above is visible in the scrape.
    assert!(
        text.contains("stj_serve_responses_total{class=\"2xx\"}"),
        "{text}"
    );
    assert!(
        text.contains("stj_serve_responses_total{class=\"4xx\"}"),
        "{text}"
    );
    assert!(
        text.contains("stj_serve_dataset_objects{dataset=\"adv-a\"}"),
        "{text}"
    );
    let buckets = text.matches("stj_serve_request_latency_ns_bucket").count();
    assert!(buckets > 0, "latency histograms expose buckets: {text}");
    stop();
}

/// Writes both arenas to real STJD v2 files and serves them from disk
/// (zero-copy on supporting platforms), checking results still match.
#[test]
fn disk_loaded_datasets_serve_identically() {
    let dir = std::env::temp_dir().join(format!("stj-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let (l, r, grid) = adversarial_arenas();
    let mut paths = Vec::new();
    for (name, arena) in [("a.stjd", &l), ("b.stjd", &r)] {
        let path = dir.join(name);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
        write_arena_v2(&mut f, arena, &grid).expect("write v2");
        std::io::Write::flush(&mut f).expect("flush");
        paths.push(path);
    }
    let datasets = stjoin::serve::load_datasets(&paths).expect("load from disk");
    let server = Server::bind(ServeCtx::new(free_port_config(), datasets)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::new(addr, false);
    for i in 0..PAIRS as usize {
        let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
        let (status, body) = client.request("GET", &target, b"").expect("pair");
        assert_eq!(status, 200);
        let offline = find_relation(l.object(i), r.object(i));
        assert!(
            String::from_utf8(body)
                .expect("utf8")
                .contains(&format!("\"relation\": \"{}\"", offline.relation)),
            "disk-backed pair {i} disagrees with offline pipeline"
        );
    }
    flag.trigger();
    handle.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}
