//! End-to-end tests of the serving stack against a real in-process
//! server: every byte goes over a loopback TCP connection through the
//! production accept/queue/worker/dispatch path.
//!
//! The acceptance bar is *bit-identical results*: for adversarial pair
//! workloads (the same generator the differential check harness uses),
//! the server's `pair`, `relate`, and `join` answers must match the
//! offline pipeline exactly.

use stjoin::core::{find_relation, TopologyJoin};
use stjoin::datagen::{adversarial_pair, adversarial_space};
use stjoin::de9im::TopoRelation;
use stjoin::geom::wkt::polygon_to_wkt;
use stjoin::prelude::*;
use stjoin::serve::{Client, LoadedDataset, ServeConfig, ServeCtx, Server};
use stjoin::store::write_arena_v2;
use stjoin::Tiling;

const SEED: u64 = 0xE2E_5E12;
const PAIRS: u64 = 44; // covers all 11 adversarial categories 4x

/// Builds the two adversarial datasets (all `a` sides, all `b` sides)
/// on a shared grid over the adversarial space.
fn adversarial_arenas() -> (DatasetArena, DatasetArena, Grid) {
    let grid = Grid::new(adversarial_space(), 8);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..PAIRS {
        let p = adversarial_pair(SEED, i);
        left.push(p.a);
        right.push(p.b);
    }
    let l = Dataset::build("adv-a", left, &grid).to_arena();
    let r = Dataset::build("adv-b", right, &grid).to_arena();
    (l, r, grid)
}

/// Starts a server on a free port and returns (address, shutdown
/// closure joining the serve thread).
fn start_server(config: ServeConfig) -> (String, impl FnOnce()) {
    let (l, r, grid) = adversarial_arenas();
    let datasets = vec![
        LoadedDataset {
            name: l.name().to_string(),
            tiling: Tiling::for_probes(l.mbrs()),
            arena: l,
            grid: grid.clone(),
        },
        LoadedDataset {
            name: r.name().to_string(),
            tiling: Tiling::for_probes(r.mbrs()),
            arena: r,
            grid,
        },
    ];
    let server = Server::bind(ServeCtx::new(config, datasets)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let stop = move || {
        flag.trigger();
        handle.join().expect("join serve thread");
    };
    (addr, stop)
}

fn free_port_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn pair_replay_is_bit_identical_to_offline_pipeline() {
    let (addr, stop) = start_server(free_port_config());
    let (l, r, _grid) = adversarial_arenas();
    let mut client = Client::new(addr, false);
    for i in 0..PAIRS as usize {
        let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
        let (status, body) = client.request("GET", &target, b"").expect("pair request");
        assert_eq!(status, 200, "pair {i}");
        let body = String::from_utf8(body).expect("utf8");
        let offline = find_relation(l.object(i), r.object(i));
        assert!(
            body.contains(&format!("\"relation\": \"{}\"", offline.relation)),
            "pair {i}: server disagreed with offline pipeline: {body}"
        );
    }
    stop();
}

#[test]
fn relate_replay_matches_offline_bruteforce() {
    let (addr, stop) = start_server(free_port_config());
    let (_l, r, grid) = adversarial_arenas();
    let mut client = Client::new(addr, false);
    // Probe dataset adv-b with each left-side polygon, rebuilt from its
    // WKT round-trip exactly as the server will see it.
    for i in (0..PAIRS as usize).step_by(3) {
        let wkt = polygon_to_wkt(&adversarial_pair(SEED, i as u64).a);
        let target = "/v1/relate?dataset=adv-b&limit=1000000";
        let (status, body) = client
            .request("POST", target, wkt.as_bytes())
            .expect("relate request");
        assert_eq!(
            status,
            200,
            "relate {i}: {}",
            String::from_utf8_lossy(&body)
        );
        let body = String::from_utf8(body).expect("utf8");
        assert!(body.contains("\"truncated\": false"), "{body}");

        // Offline truth: the same probe object built from the same WKT,
        // against every stored object.
        let probe_poly = stjoin::geom::wkt::polygon_from_wkt(&wkt).expect("roundtrip wkt");
        let probe = SpatialObject::build(probe_poly, &grid);
        for j in 0..r.len() {
            let out = find_relation(probe.view(), r.object(j));
            let expected = format!("\"id\": {j},\n      \"relation\": \"{}\"", out.relation);
            if out.relation == TopoRelation::Disjoint {
                assert!(
                    !body.contains(&format!("\"id\": {j},")),
                    "probe {i}: server reported disjoint object {j}: {body}"
                );
            } else {
                assert!(
                    body.contains(&expected),
                    "probe {i}: missing/differing match for object {j} \
                     (expected {:?}): {body}",
                    out.relation
                );
            }
        }
    }
    stop();
}

#[test]
fn join_replay_matches_offline_join() {
    let (addr, stop) = start_server(free_port_config());
    let (l, r, _grid) = adversarial_arenas();
    let offline = TopologyJoin::new().run(&l, &r);
    let mut offline_lines: Vec<String> = offline
        .links
        .iter()
        .map(|k| {
            format!(
                "{{\"r\":{},\"s\":{},\"relation\":\"{}\"}}",
                k.r, k.s, k.relation
            )
        })
        .collect();
    offline_lines.sort();

    let mut client = Client::new(addr, false);
    let (status, body) = client
        .request("POST", "/v1/join?left=adv-a&right=adv-b", b"")
        .expect("join request");
    assert_eq!(status, 200);
    let body = String::from_utf8(body).expect("utf8");
    let mut server_lines: Vec<String> = body
        .lines()
        .filter(|line| !line.starts_with("{\"summary\""))
        .map(str::to_string)
        .collect();
    server_lines.sort();
    assert_eq!(
        server_lines, offline_lines,
        "served join differs from offline join"
    );

    let summary = body
        .lines()
        .find(|line| line.starts_with("{\"summary\""))
        .expect("summary line");
    assert!(
        summary.contains(&format!("\"links\":{}", offline.links.len())),
        "{summary}"
    );
    assert!(summary.contains("\"truncated\":false"), "{summary}");
    stop();
}

#[test]
fn framed_transport_agrees_with_http() {
    let (addr, stop) = start_server(free_port_config());
    let mut http = Client::new(addr.clone(), false);
    let mut framed = Client::new(addr, true);
    for i in 0..8 {
        let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
        let (hs, hb) = http.request("GET", &target, b"").expect("http");
        let (fs, fb) = framed.request("GET", &target, b"").expect("framed");
        assert_eq!(hs, fs);
        assert_eq!(hb, fb, "transports disagree on pair {i}");
    }
    stop();
}

#[test]
fn bad_wkt_probe_gets_line_numbered_400() {
    let (addr, stop) = start_server(free_port_config());
    let mut client = Client::new(addr, false);
    let (status, body) = client
        .request("POST", "/v1/relate?dataset=adv-a", b"POLYGON((1 2, 3")
        .expect("request");
    assert_eq!(status, 400);
    let body = String::from_utf8(body).expect("utf8");
    assert!(body.contains("\"kind\": \"bad_wkt\""), "{body}");
    assert!(body.contains("line 1:"), "{body}");
    stop();
}

#[test]
fn server_round_trips_stats_and_cache_hits() {
    let (addr, stop) = start_server(free_port_config());
    let mut client = Client::new(addr, false);
    let wkt = b"POLYGON((100 100, 300 100, 300 300, 100 300, 100 100))";
    let (s1, b1) = client
        .request("POST", "/v1/relate?dataset=adv-a", wkt)
        .expect("first");
    let (s2, b2) = client
        .request("POST", "/v1/relate?dataset=adv-a", wkt)
        .expect("second");
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "cached response must be byte-identical");

    let (status, stats) = client.request("GET", "/stats", b"").expect("stats");
    assert_eq!(status, 200);
    let stats = String::from_utf8(stats).expect("utf8");
    assert!(
        stats.contains("\"schema\": \"stj-serve-report/v1\""),
        "{stats}"
    );
    assert!(
        stats.contains("\"hits\": 1"),
        "cache hit not recorded: {stats}"
    );
    stop();
}

#[test]
fn load_shedding_returns_429_when_queue_full() {
    // One worker, queue depth 1: at most one join executing plus one
    // queued. Sixteen concurrent join requests must produce at least
    // one shed (429 + Retry-After) and at least one success — and under
    // the reactor a shed is per-request: the connection survives it.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let (addr, stop) = start_server(cfg);

    let outcomes: Vec<(u16, Option<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::new(addr, false);
                    let (status, _body) = client
                        .request("POST", "/v1/join?left=adv-a&right=adv-b", b"")
                        .expect("join request");
                    (status, client.retry_after())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });

    let ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed = outcomes.iter().filter(|(s, _)| *s == 429).count();
    assert!(ok >= 1, "no join succeeded: {outcomes:?}");
    assert!(shed >= 1, "nothing was shed despite queue depth 1: {outcomes:?}");
    for (status, retry_after) in &outcomes {
        if *status == 429 {
            assert_eq!(
                *retry_after,
                Some(1),
                "shed responses must carry Retry-After"
            );
        }
    }
    stop();
}

/// A byte-at-a-time request writer (slow loris) is bounded by the
/// header deadline and cannot starve well-behaved clients.
#[cfg(target_os = "linux")]
#[test]
fn slow_loris_is_evicted_and_cannot_starve_others() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        header_ms: 400,
        idle_ms: 1000,
        ..ServeConfig::default()
    };
    let (addr, stop) = start_server(cfg);

    // The attacker: dribbles a valid request head one byte at a time,
    // never finishing. Activity must NOT reset the header deadline.
    let attacker_addr = addr.clone();
    let attacker = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(&attacker_addr).expect("attacker connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let head = b"GET /healthz HTTP/1.1\r\nhost: stj\r\n";
        let start = Instant::now();
        for b in head.iter().cycle() {
            if conn.write_all(std::slice::from_ref(b)).is_err() {
                break; // server closed on us — expected
            }
            std::thread::sleep(Duration::from_millis(25));
            if start.elapsed() > Duration::from_secs(5) {
                return Err("server never evicted the slow writer");
            }
        }
        // The socket must be fully closed, not just half-shut.
        let mut buf = [0u8; 64];
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => Ok(start.elapsed()),
            Ok(_) => Ok(start.elapsed()),
        }
    });

    // Meanwhile, normal clients must be served promptly on the single
    // worker the attacker would otherwise pin.
    let mut client = Client::new(addr.clone(), false);
    for _ in 0..10 {
        let t0 = Instant::now();
        let (status, _) = client.request("GET", "/healthz", b"").expect("healthz");
        assert_eq!(status, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "well-behaved request starved by the slow writer"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let evicted_after = attacker
        .join()
        .expect("attacker thread")
        .expect("attacker must be evicted");
    // Evicted by the ~400ms header deadline (with scheduling slack),
    // not by the 5s fail-safe.
    assert!(
        evicted_after < Duration::from_secs(3),
        "eviction took {evicted_after:?}"
    );

    let (status, metrics) = client.request("GET", "/metrics", b"").expect("metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("utf8");
    let header_timeouts = metrics
        .lines()
        .find(|l| l.contains("stj_serve_connection_timeouts_total{cause=\"header\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        header_timeouts >= 1,
        "header timeout not counted: {metrics}"
    );
    stop();
}

/// Streaming `/v1/discover` over the wire matches the offline pipeline
/// link-for-link, and the NDJSON variant carries a summary.
#[test]
fn discover_streams_links_matching_offline_pipeline() {
    use stjoin::core::linking::geosparql_property;

    let (addr, stop) = start_server(free_port_config());
    let (_l, r, grid) = adversarial_arenas();

    // Probe body: every third left-side polygon, one WKT per line.
    let probe_idxs: Vec<usize> = (0..PAIRS as usize).step_by(3).collect();
    let body: String = probe_idxs
        .iter()
        .map(|&i| polygon_to_wkt(&adversarial_pair(SEED, i as u64).a))
        .collect::<Vec<_>>()
        .join("\n");

    let mut client = Client::new(addr, false);
    let (status, resp) = client
        .request(
            "POST",
            "/v1/discover?dataset=adv-b&format=nt&name=probes",
            body.as_bytes(),
        )
        .expect("discover request");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let mut server_lines: Vec<String> = String::from_utf8(resp)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect();
    server_lines.sort();

    // Offline truth: the same probes, rebuilt from their WKT
    // round-trip, against every stored object.
    let mut offline_lines: Vec<String> = Vec::new();
    for (pi, &i) in probe_idxs.iter().enumerate() {
        let wkt = polygon_to_wkt(&adversarial_pair(SEED, i as u64).a);
        let poly = stjoin::geom::wkt::polygon_from_wkt(&wkt).expect("roundtrip");
        let probe = SpatialObject::build(poly, &grid);
        for j in 0..r.len() {
            let out = find_relation(probe.view(), r.object(j));
            if out.relation == TopoRelation::Disjoint {
                continue;
            }
            offline_lines.push(format!(
                "<urn:stj:probes:{pi}> <{}> <urn:stj:adv-b:{j}> .",
                geosparql_property(out.relation)
            ));
        }
    }
    offline_lines.sort();
    assert_eq!(
        server_lines, offline_lines,
        "streamed discover differs from offline pipeline"
    );

    stop();
}

/// Dataset hot-swap under concurrent load: every request succeeds
/// (no failed or mixed-generation responses), the generation id bumps,
/// the probe cache is invalidated, and — on Linux — the old mapping is
/// actually gone from `/proc/self/maps`.
#[test]
fn hot_swap_under_load_is_seamless() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let gen1_dir = std::env::temp_dir().join(format!("stj-hotswap-g1-{}", std::process::id()));
    let gen2_dir = std::env::temp_dir().join(format!("stj-hotswap-g2-{}", std::process::id()));
    for d in [&gen1_dir, &gen2_dir] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).expect("tempdir");
    }
    let (l, r, grid) = adversarial_arenas();
    let write_gen = |dir: &std::path::Path| -> Vec<std::path::PathBuf> {
        let mut paths = Vec::new();
        for (name, arena) in [("a.stjd", &l), ("b.stjd", &r)] {
            let path = dir.join(name);
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
            write_arena_v2(&mut f, arena, &grid).expect("write v2");
            std::io::Write::flush(&mut f).expect("flush");
            paths.push(path);
        }
        paths
    };
    let gen1_paths = write_gen(&gen1_dir);
    let gen2_paths = write_gen(&gen2_dir);

    let datasets = stjoin::serve::load_datasets(&gen1_paths).expect("load gen1");
    let zero_copy = datasets[0].arena.is_zero_copy();
    let server = Server::bind(ServeCtx::new(free_port_config(), datasets)).expect("bind");
    server.ctx().generations.set_paths(gen1_paths.clone());
    let addr = server.local_addr().expect("addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    // Warm the probe cache so the swap has something to invalidate.
    let mut admin = Client::new(addr.clone(), false);
    let wkt = b"POLYGON((100 100, 300 100, 300 300, 100 300, 100 100))";
    for _ in 0..2 {
        let (s, _) = admin
            .request("POST", "/v1/relate?dataset=adv-a", wkt)
            .expect("warm relate");
        assert_eq!(s, 200);
    }

    // Concurrent load across the swap; every response must be correct.
    let stop_load = AtomicBool::new(false);
    let expected: Vec<String> = (0..PAIRS as usize)
        .map(|i| format!("\"relation\": \"{}\"", find_relation(l.object(i), r.object(i)).relation))
        .collect();
    std::thread::scope(|scope| {
        let mut loaders = Vec::new();
        for t in 0..4usize {
            let addr = addr.clone();
            let stop_load = &stop_load;
            let expected = &expected;
            loaders.push(scope.spawn(move || {
                let mut client = Client::new(addr, t % 2 == 1);
                let mut served = 0u64;
                while !stop_load.load(Ordering::Relaxed) {
                    let i = (served as usize + t) % PAIRS as usize;
                    let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
                    let (status, body) = client.request("GET", &target, b"").expect("pair");
                    assert_eq!(status, 200, "request failed during hot swap");
                    let body = String::from_utf8(body).expect("utf8");
                    assert!(
                        body.contains(&expected[i]),
                        "wrong relation during hot swap: {body}"
                    );
                    served += 1;
                }
                served
            }));
        }

        // Mid-load: swap to generation 2 (same data, different files).
        std::thread::sleep(std::time::Duration::from_millis(150));
        let reload_body = gen2_paths
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let (status, body) = admin
            .request("POST", "/v1/admin/reload", reload_body.as_bytes())
            .expect("reload");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert!(
            String::from_utf8_lossy(&body).contains("\"generation\": 2"),
            "{}",
            String::from_utf8_lossy(&body)
        );
        std::thread::sleep(std::time::Duration::from_millis(150));

        stop_load.store(false, Ordering::Relaxed);
        stop_load.store(true, Ordering::Relaxed);
        let total: u64 = loaders.into_iter().map(|h| h.join().expect("loader")).sum();
        assert!(total > 0, "load threads served nothing");
    });

    // The swap is visible in /stats: generation 2, cache invalidated.
    let (status, stats) = admin.request("GET", "/stats", b"").expect("stats");
    assert_eq!(status, 200);
    let stats = String::from_utf8(stats).expect("utf8");
    assert!(stats.contains("\"id\": 2"), "generation not bumped: {stats}");
    assert!(
        stats.contains("\"invalidations\": 1"),
        "cache not invalidated: {stats}"
    );

    // The old generation's mapping must actually be gone once nothing
    // pins it (zero-copy arenas mmap the file; the path shows in maps).
    #[cfg(target_os = "linux")]
    if zero_copy {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let maps = std::fs::read_to_string("/proc/self/maps").expect("maps");
            let gen1 = gen1_dir.display().to_string();
            let gen2 = gen2_dir.display().to_string();
            if !maps.contains(&gen1) {
                assert!(
                    maps.contains(&gen2),
                    "new generation not mapped: {maps}"
                );
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "old generation still mapped after swap"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    let _ = zero_copy; // silence unused on non-linux

    flag.trigger();
    handle.join().expect("join");
    for d in [&gen1_dir, &gen2_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// `GET /metrics` over the real wire parses as Prometheus text
/// exposition format 0.0.4 and reflects the requests that hit it.
#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let (addr, stop) = start_server(free_port_config());
    let mut client = Client::new(addr, false);

    // Generate some traffic first so the counters are non-trivial.
    let (status, _) = client
        .request("GET", "/v1/pair?left=adv-a&i=0&right=adv-b&j=0", b"")
        .expect("pair request");
    assert_eq!(status, 200);
    let (status, _) = client.request("GET", "/nope", b"").expect("404 request");
    assert_eq!(status, 404);

    let (status, body) = client
        .request("GET", "/metrics", b"")
        .expect("metrics request");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf8 metrics");

    // Every line is a comment (`# HELP name ...` / `# TYPE name kind`)
    // or a sample (`name{labels} value` with a float-parsable value).
    let mut samples = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().expect("comment keyword");
            assert!(
                matches!(keyword, "HELP" | "TYPE"),
                "unexpected comment line: {line}"
            );
            assert!(words.next().is_some(), "comment missing metric: {line}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = series.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed labels in: {line}");
            assert!(series[open..].contains('='), "empty label set in: {line}");
        }
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad sample value in: {line}"));
        samples += 1;
    }
    assert!(
        samples >= 20,
        "expected a full exposition, got {samples} samples"
    );

    // The traffic above is visible in the scrape.
    assert!(
        text.contains("stj_serve_responses_total{class=\"2xx\"}"),
        "{text}"
    );
    assert!(
        text.contains("stj_serve_responses_total{class=\"4xx\"}"),
        "{text}"
    );
    assert!(
        text.contains("stj_serve_dataset_objects{dataset=\"adv-a\"}"),
        "{text}"
    );
    let buckets = text.matches("stj_serve_request_latency_ns_bucket").count();
    assert!(buckets > 0, "latency histograms expose buckets: {text}");
    stop();
}

/// Writes both arenas to real STJD v2 files and serves them from disk
/// (zero-copy on supporting platforms), checking results still match.
#[test]
fn disk_loaded_datasets_serve_identically() {
    let dir = std::env::temp_dir().join(format!("stj-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let (l, r, grid) = adversarial_arenas();
    let mut paths = Vec::new();
    for (name, arena) in [("a.stjd", &l), ("b.stjd", &r)] {
        let path = dir.join(name);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
        write_arena_v2(&mut f, arena, &grid).expect("write v2");
        std::io::Write::flush(&mut f).expect("flush");
        paths.push(path);
    }
    let datasets = stjoin::serve::load_datasets(&paths).expect("load from disk");
    let server = Server::bind(ServeCtx::new(free_port_config(), datasets)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::new(addr, false);
    for i in 0..PAIRS as usize {
        let target = format!("/v1/pair?left=adv-a&i={i}&right=adv-b&j={i}");
        let (status, body) = client.request("GET", &target, b"").expect("pair");
        assert_eq!(status, 200);
        let offline = find_relation(l.object(i), r.object(i));
        assert!(
            String::from_utf8(body)
                .expect("utf8")
                .contains(&format!("\"relation\": \"{}\"", offline.relation)),
            "disk-backed pair {i} disagrees with offline pipeline"
        );
    }
    flag.trigger();
    handle.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}
