//! Geo-spatial interlinking: discover all topological links between two
//! areal datasets (the paper's motivating application, Sec 1).
//!
//! Generates OSM-style lakes and parks, runs the MBR join to produce
//! candidate pairs, then finds every pair's most specific relation with
//! the P+C pipeline — printing the discovered link histogram and the
//! throughput of each method on the same workload.
//!
//! Run with:
//! ```text
//! cargo run --example geo_interlinking --release
//! ```

use std::collections::BTreeMap;
use std::time::Instant;
use stjoin::datagen::{generate_combo, ComboId};
use stjoin::prelude::*;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    println!("generating OLE-OPE (lakes x parks) at scale {scale} ...");
    let (lakes_polys, parks_polys) = generate_combo(ComboId::OleOpe, scale);
    let mut extent = Rect::empty();
    for p in lakes_polys.iter().chain(&parks_polys) {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 14);

    let t = Instant::now();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let lakes = Dataset::build_parallel("OLE", lakes_polys, &grid, threads).to_arena();
    let parks = Dataset::build_parallel("OPE", parks_polys, &grid, threads).to_arena();
    println!(
        "preprocessed {} lakes + {} parks (MBRs + APRIL) in {:.2?}",
        lakes.len(),
        parks.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let pairs = mbr_join_parallel(lakes.mbrs(), parks.mbrs(), threads);
    println!(
        "MBR join: {} candidate pairs in {:.2?}",
        pairs.len(),
        t.elapsed()
    );

    // Interlink with the P+C pipeline.
    let t = Instant::now();
    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();
    let mut stats = PipelineStats::default();
    for &(i, j) in &pairs {
        let out = find_relation(lakes.object(i as usize), parks.object(j as usize));
        stats.record(&out);
        if out.relation != TopoRelation::Disjoint {
            *histogram.entry(out.relation.to_string()).or_default() += 1;
        }
    }
    let pc_time = t.elapsed();

    println!("\ndiscovered links (non-disjoint candidate pairs):");
    for (rel, count) in &histogram {
        println!("  {rel:<12} {count}");
    }
    println!(
        "\nP+C: {} pairs in {:.2?} ({:.0} pairs/s), {:.1}% undetermined (refined)",
        stats.pairs,
        pc_time,
        stats.pairs as f64 / pc_time.as_secs_f64(),
        stats.undetermined_pct()
    );

    // Same workload through the baselines, for comparison.
    for (name, f) in [
        (
            "ST2",
            find_relation_st2 as fn(ObjectRef<'_>, ObjectRef<'_>) -> FindOutcome,
        ),
        ("OP2", find_relation_op2),
        ("APRIL", find_relation_april),
    ] {
        let t = Instant::now();
        let mut st = PipelineStats::default();
        for &(i, j) in &pairs {
            st.record(&f(lakes.object(i as usize), parks.object(j as usize)));
        }
        let dt = t.elapsed();
        println!(
            "{name}: {} pairs in {:.2?} ({:.0} pairs/s), {:.1}% undetermined",
            st.pairs,
            dt,
            st.pairs as f64 / dt.as_secs_f64(),
            st.undetermined_pct()
        );
    }
}
