//! The Figure 9 case study, reproduced: a high-complexity lake residing
//! inside a high-complexity park. The P+C intermediate filter identifies
//! `inside` from the interval lists alone, while every baseline must
//! compute the DE-9IM matrix — yielding a large per-pair speedup.
//!
//! Run with:
//! ```text
//! cargo run --example case_study --release
//! ```

use std::time::Instant;
use stjoin::datagen::fig9_lake_in_park;
use stjoin::prelude::*;

fn time<T>(f: impl Fn() -> T, iters: u32) -> (T, std::time::Duration) {
    let t = Instant::now();
    let mut out = None;
    for _ in 0..iters {
        out = Some(f());
    }
    (out.unwrap(), t.elapsed() / iters)
}

fn main() {
    let (lake_poly, park_poly) = fig9_lake_in_park(42);
    let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 16);

    let lake = SpatialObject::build(lake_poly, &grid);
    let park = SpatialObject::build(park_poly, &grid);

    // Figure 9(a): the pair's statistics.
    println!("statistic          lake      park");
    println!(
        "vertices       {:>8} {:>9}",
        lake.num_vertices(),
        park.num_vertices()
    );
    println!(
        "MBR area       {:>8.4} {:>9.4}   (fraction of data space)",
        lake.mbr.area() / grid.extent().area(),
        park.mbr.area() / grid.extent().area()
    );
    println!(
        "C-intervals    {:>8} {:>9}",
        lake.april.c.len(),
        park.april.c.len()
    );
    println!(
        "P-intervals    {:>8} {:>9}",
        lake.april.p.len(),
        park.april.p.len()
    );

    // The relation, per method, with per-pair timing.
    let iters = 20;
    let (out_pc, t_pc) = time(|| find_relation(lake.view(), park.view()), iters);
    let (out_st2, t_st2) = time(|| find_relation_st2(lake.view(), park.view()), iters);
    let (out_op2, t_op2) = time(|| find_relation_op2(lake.view(), park.view()), iters);
    let (out_april, t_april) = time(|| find_relation_april(lake.view(), park.view()), iters);

    println!("\nmethod   relation     time/pair");
    println!(
        "P+C      {:<12} {:>10.2?}",
        out_pc.relation.to_string(),
        t_pc
    );
    println!(
        "ST2      {:<12} {:>10.2?}",
        out_st2.relation.to_string(),
        t_st2
    );
    println!(
        "OP2      {:<12} {:>10.2?}",
        out_op2.relation.to_string(),
        t_op2
    );
    println!(
        "APRIL    {:<12} {:>10.2?}",
        out_april.relation.to_string(),
        t_april
    );

    assert_eq!(out_pc.relation, TopoRelation::Inside);
    assert_eq!(out_pc.determination, Determination::IntermediateFilter);
    assert_eq!(out_st2.relation, TopoRelation::Inside);

    let speedup = t_st2.as_secs_f64() / t_pc.as_secs_f64();
    println!(
        "\nP+C decided `inside` from the interval lists alone — {speedup:.0}x \
         faster than refinement-based methods on this pair"
    );
}
