//! The preprocess-once, join-many workflow: build APRIL approximations,
//! persist them with `stj-store`, and run joins straight from the loaded
//! datasets — the deployment mode the paper's preprocessing step implies.
//!
//! Run with:
//! ```text
//! cargo run --example persist_and_reuse --release
//! ```

use std::time::Instant;
use stjoin::core::{JoinMethod, TopologyJoin};
use stjoin::datagen::{generate_combo, ComboId};
use stjoin::prelude::*;
use stjoin::store::{open_arena, write_arena_v2};

fn main() {
    let dir = std::env::temp_dir().join(format!("stj-persist-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // 1. Generate and preprocess once.
    let (lakes_polys, parks_polys) = generate_combo(ComboId::OleOpe, 0.02);
    let mut extent = Rect::empty();
    for p in lakes_polys.iter().chain(&parks_polys) {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 14);
    let t = Instant::now();
    let lakes = Dataset::build("OLE", lakes_polys, &grid);
    let parks = Dataset::build("OPE", parks_polys, &grid);
    println!(
        "preprocessed {} + {} objects in {:.2?}",
        lakes.len(),
        parks.len(),
        t.elapsed()
    );

    // 2. Move onto columnar arenas and persist them as STJD v2 (the
    //    grid travels with the file).
    let (lakes, parks) = (lakes.to_arena(), parks.to_arena());
    let lakes_path = dir.join("lakes.stjd");
    let parks_path = dir.join("parks.stjd");
    for (ds, path) in [(&lakes, &lakes_path), (&parks, &parks_path)] {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create"));
        write_arena_v2(&mut f, ds, &grid).expect("serialize");
    }
    println!(
        "saved {} + {} bytes",
        std::fs::metadata(&lakes_path).unwrap().len(),
        std::fs::metadata(&parks_path).unwrap().len()
    );

    // 3. A later session: open (no rasterization, and on little-endian
    //    hosts no per-column decode either) and join immediately.
    let t = Instant::now();
    let (lakes2, g1) = open_arena(&lakes_path).expect("open lakes");
    let (parks2, g2) = open_arena(&parks_path).expect("open parks");
    assert_eq!(g1, g2, "datasets must share the grid");
    println!(
        "opened both datasets in {:.2?} (zero-copy: {})",
        t.elapsed(),
        lakes2.is_zero_copy() && parks2.is_zero_copy()
    );

    let t = Instant::now();
    let result = TopologyJoin::new()
        .method(JoinMethod::PC)
        .run(&lakes2, &parks2);
    println!(
        "join: {} candidates -> {} links in {:.2?} ({:.1}% refined)",
        result.candidates,
        result.links.len(),
        t.elapsed(),
        result.stats.undetermined_pct()
    );

    // 4. Sanity: identical to joining the originals.
    let fresh = TopologyJoin::new().run(&lakes, &parks);
    assert_eq!(fresh.links, result.links);
    println!("loaded-dataset join identical to in-memory join");

    let _ = std::fs::remove_dir_all(&dir);
}
