//! Topological-predicate joins: "find every building that meets a park
//! boundary", "find every lake inside a park" — spatial joins with a
//! fixed relation predicate, served by `relate_p` (Sec 3.3).
//!
//! Demonstrates why predicate-specific filtering beats running the
//! general find-relation pipeline and post-filtering: for selective
//! predicates (`meets`, `equals`) almost every pair is refuted by the
//! MBR or raster layers alone.
//!
//! Run with:
//! ```text
//! cargo run --example relate_query --release
//! ```

use std::time::Instant;
use stjoin::datagen::{generate_combo, ComboId};
use stjoin::prelude::*;
use stjoin::RelateDetermination;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.04);

    let (lakes_polys, parks_polys) = generate_combo(ComboId::OleOpe, scale);
    let mut extent = Rect::empty();
    for p in lakes_polys.iter().chain(&parks_polys) {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 14);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let lakes = Dataset::build_parallel("OLE", lakes_polys, &grid, threads).to_arena();
    let parks = Dataset::build_parallel("OPE", parks_polys, &grid, threads).to_arena();
    let pairs = mbr_join_parallel(lakes.mbrs(), parks.mbrs(), threads);
    println!(
        "{} lakes x {} parks -> {} candidate pairs\n",
        lakes.len(),
        parks.len(),
        pairs.len()
    );

    for predicate in [
        TopoRelation::Inside,
        TopoRelation::Meets,
        TopoRelation::Equals,
        TopoRelation::Intersects,
    ] {
        let t = Instant::now();
        let mut matched = 0u64;
        let mut refined = 0u64;
        for &(i, j) in &pairs {
            let out = relate_p(
                lakes.object(i as usize),
                parks.object(j as usize),
                predicate,
            );
            if out.holds {
                matched += 1;
            }
            if out.determination == RelateDetermination::Refinement {
                refined += 1;
            }
        }
        let dt = t.elapsed();
        println!(
            "relate_{:<12} {:>8} matches | {:>10.0} pairs/s | {:>5.1}% refined",
            predicate.to_string().replace(' ', "_"),
            matched,
            pairs.len() as f64 / dt.as_secs_f64(),
            refined as f64 / pairs.len() as f64 * 100.0
        );

        // Cross-check a sample against the general pipeline.
        for &(i, j) in pairs.iter().take(500) {
            let r = lakes.object(i as usize);
            let s = parks.object(j as usize);
            let general = find_relation(r, s).relation;
            let expected = general == predicate || general.implies(predicate);
            assert_eq!(
                relate_p(r, s, predicate).holds,
                expected,
                "mismatch for pair ({i},{j}) predicate {predicate:?} (general: {general:?})"
            );
        }
    }

    println!("\n(relate_p agreed with the find-relation pipeline on sampled pairs)");
}
