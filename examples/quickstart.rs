//! Quickstart: detect the topological relation of two polygons.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart --release
//! ```

use stjoin::geom::wkt;
use stjoin::prelude::*;

fn main() {
    // 1. A shared raster grid for the scenario's data space. All objects
    //    joined together must use the same grid (the paper uses order 16
    //    = 2^16 x 2^16 cells; smaller orders trade filter power for
    //    preprocessing speed).
    let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 12);

    // 2. Parse geometries (WKT) and preprocess: MBR + APRIL P/C lists.
    let park = wkt::polygon_from_wkt(
        "POLYGON ((5 5, 95 5, 95 95, 5 95, 5 5), (60 60, 80 60, 80 80, 60 80, 60 60))",
    )
    .expect("valid WKT");
    let lake =
        wkt::polygon_from_wkt("POLYGON ((20 20, 45 25, 40 50, 15 45, 20 20))").expect("valid WKT");
    let pond_in_clearing =
        wkt::polygon_from_wkt("POLYGON ((65 65, 75 65, 75 75, 65 75, 65 65))").expect("valid WKT");

    let park = SpatialObject::build(park, &grid);
    let lake = SpatialObject::build(lake, &grid);
    let pond = SpatialObject::build(pond_in_clearing, &grid);

    // 3. Find the most specific topological relation per pair.
    for (name, obj) in [("lake", &lake), ("pond", &pond)] {
        let out = find_relation(obj.view(), park.view());
        println!(
            "{name} vs park: {} (decided by {:?})",
            out.relation, out.determination
        );
    }

    // The lake sits in the park's material: `inside`, decided from the
    // interval lists alone. The pond sits in the park's hole (the
    // clearing): `disjoint`.
    assert_eq!(
        find_relation(lake.view(), park.view()).relation,
        TopoRelation::Inside
    );
    assert_eq!(
        find_relation(pond.view(), park.view()).relation,
        TopoRelation::Disjoint
    );

    // 4. Predicate queries: "is the lake inside the park?" — cheaper than
    //    finding the most specific relation when you only need one test.
    let q = relate_p(lake.view(), park.view(), TopoRelation::Inside);
    println!(
        "relate_inside(lake, park) = {} via {:?}",
        q.holds, q.determination
    );

    // 5. The full DE-9IM matrix is available when you need it.
    let m = relate(&lake.polygon, &park.polygon);
    println!("DE-9IM(lake, park) = {m}");
}
